// Safety tests for the fused pipeline cache on the Rack access path: the per-thread memo
// of {translation, protection verdict, directory entry, cached frame} must be invalidated
// by every event that could change the answer — mprotect, munmap, domain revocation,
// migration, invalidation waves from other blades, and region split/merge — so a warmed
// fast path can never replay a stale verdict. Each test first *warms* the memo with
// repeated same-page hits, then mutates, then asserts the post-mutation behavior.
#include <gtest/gtest.h>

#include "src/core/mind.h"

namespace mind {
namespace {

RackConfig Config() {
  RackConfig c;
  c.num_compute_blades = 2;
  c.num_memory_blades = 1;
  c.memory_blade_capacity = 1ull << 30;
  c.compute_cache_bytes = 16ull << 20;
  c.store_data = true;
  return c;
}

class RackPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rack_ = std::make_unique<Rack>(Config());
    pid_ = *rack_->Exec("pipeline");
    pdid_ = *rack_->controller().PdidOf(pid_);
    tid0_ = rack_->SpawnThread(pid_, 0)->tid;
    tid1_ = rack_->SpawnThread(pid_, 1)->tid;
    va_ = *rack_->Mmap(pid_, 1 << 20, PermClass::kReadWrite);
  }

  AccessResult Go(ThreadId tid, ComputeBladeId blade, VirtAddr va, AccessType t,
                  SimTime now) {
    return rack_->Access(AccessRequest{tid, blade, pdid_, va, t, now});
  }

  // Warms the pipeline slot: the second same-page access takes the memoized fast path.
  SimTime Warm(ThreadId tid, ComputeBladeId blade, AccessType t, SimTime now) {
    SimTime done = now;
    for (int i = 0; i < 3; ++i) {
      auto r = Go(tid, blade, va_, t, done);
      EXPECT_TRUE(r.status.ok());
      done = r.completion;
    }
    return done;
  }

  std::unique_ptr<Rack> rack_;
  ProcessId pid_ = kInvalidProcess;
  ProtDomainId pdid_ = 0;
  ThreadId tid0_ = 0;
  ThreadId tid1_ = 0;
  VirtAddr va_ = 0;
};

TEST_F(RackPipelineTest, WarmedPathServesLocalHits) {
  SimTime t = Go(tid0_, 0, va_, AccessType::kWrite, 0).completion;
  for (int i = 0; i < 8; ++i) {
    auto r = Go(tid0_, 0, va_, AccessType::kWrite, t);
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.local_hit) << "iteration " << i;
    t = r.completion;
  }
  EXPECT_EQ(rack_->stats().local_hits, 8u);
}

TEST_F(RackPipelineTest, MprotectInvalidatesWarmedWritePath) {
  SimTime t = Warm(tid0_, 0, AccessType::kWrite, 0);
  ASSERT_TRUE(rack_->Mprotect(pid_, va_, kPageSize, PermClass::kReadOnly).ok());
  // The warmed write verdict must not be replayed after the downgrade.
  auto w = Go(tid0_, 0, va_, AccessType::kWrite, t);
  EXPECT_EQ(w.status.code(), ErrorCode::kPermissionDenied);
  auto r = Go(tid0_, 0, va_, AccessType::kRead, w.completion);
  EXPECT_TRUE(r.status.ok());
}

TEST_F(RackPipelineTest, MunmapInvalidatesWarmedPath) {
  SimTime t = Warm(tid0_, 0, AccessType::kWrite, 0);
  ASSERT_TRUE(rack_->Munmap(pid_, va_).ok());
  auto r = Go(tid0_, 0, va_, AccessType::kRead, t);
  EXPECT_EQ(r.status.code(), ErrorCode::kFault) << "stale memo served an unmapped page";
}

TEST_F(RackPipelineTest, RevokeInvalidatesOtherDomainsWarmedPath) {
  const ProtDomainId session = 4242;
  ASSERT_TRUE(rack_->GrantToDomain(pid_, session, va_, kPageSize, PermClass::kReadOnly).ok());
  // Warm the session's read path on blade 0 (cross-domain frame: pdid_ faulted it in).
  SimTime t = Go(tid0_, 0, va_, AccessType::kRead, 0).completion;
  for (int i = 0; i < 3; ++i) {
    auto r = rack_->Access(AccessRequest{tid1_, 0, session, va_, AccessType::kRead, t});
    ASSERT_TRUE(r.status.ok());
    t = r.completion;
  }
  ASSERT_TRUE(rack_->RevokeFromDomain(session, va_, kPageSize).ok());
  auto r = rack_->Access(AccessRequest{tid1_, 0, session, va_, AccessType::kRead, t});
  EXPECT_EQ(r.status.code(), ErrorCode::kPermissionDenied)
      << "revoked domain rode a warmed pipeline slot";
  // The owner domain still works.
  EXPECT_TRUE(Go(tid0_, 0, va_, AccessType::kRead, r.completion).status.ok());
}

TEST_F(RackPipelineTest, MigrationInvalidatesWarmedTranslationAndFrames) {
  SimTime t = Warm(tid0_, 0, AccessType::kWrite, 0);
  // Write some bytes so migration has real content to carry.
  auto wrote = rack_->WriteBytes(tid0_, va_, "mind", 4, t);
  ASSERT_TRUE(wrote.ok());
  auto migrated = rack_->MigrateRange(va_, 14, /*dst=*/0, *wrote);
  ASSERT_TRUE(migrated.ok());
  // Post-migration access must re-fault (cached copies were shot down) and still see the
  // data at the new home — no stale frame pointer, no stale translation.
  auto r = Go(tid0_, 0, va_, AccessType::kRead, *migrated);
  ASSERT_TRUE(r.status.ok());
  EXPECT_FALSE(r.local_hit) << "migration left a warmed local hit behind";
  char buf[4] = {};
  ASSERT_TRUE(rack_->ReadBytes(tid0_, va_, buf, 4, r.completion).ok());
  EXPECT_EQ(std::string(buf, 4), "mind");
}

TEST_F(RackPipelineTest, RemoteInvalidationWaveInvalidatesWarmedPath) {
  // Blade 0 warms an owned (M-state) page.
  SimTime t = Warm(tid0_, 0, AccessType::kWrite, 0);
  // Blade 1 writes the same page: the invalidation wave strips blade 0's copy.
  auto other = Go(tid1_, 1, va_, AccessType::kWrite, t);
  ASSERT_TRUE(other.status.ok());
  EXPECT_TRUE(other.triggered_invalidation);
  // Blade 0's next access must miss (its frame is gone) and trigger coherence again —
  // a stale fast-path hit here would be a silent consistency violation.
  auto back = Go(tid0_, 0, va_, AccessType::kWrite, other.completion);
  ASSERT_TRUE(back.status.ok());
  EXPECT_FALSE(back.local_hit) << "invalidated frame served from the pipeline memo";
  EXPECT_TRUE(back.triggered_invalidation);
}

TEST_F(RackPipelineTest, WarmedHitsKeepLruRecency) {
  // Fill a tiny cache so LRU order is observable, with the warmed page kept hot via the
  // fast path only: Touch must keep it resident while colder pages are evicted.
  RackConfig cfg = Config();
  cfg.compute_cache_bytes = 4 * kPageSize;  // 4 frames.
  Rack rack(cfg);
  const ProcessId pid = *rack.Exec("lru");
  const ProtDomainId pdid = *rack.controller().PdidOf(pid);
  const ThreadId tid = rack.SpawnThread(pid, 0)->tid;
  const VirtAddr va = *rack.Mmap(pid, 1 << 20, PermClass::kReadWrite);

  SimTime t = rack.Access({tid, 0, pdid, va, AccessType::kWrite, 0}).completion;
  // Interleave warmed hits on page 0 with faults on fresh pages. Page 0 must survive all
  // evictions because every fast-path hit refreshes its recency.
  for (int i = 1; i <= 12; ++i) {
    t = rack.Access({tid, 0, pdid, va, AccessType::kWrite, t}).completion;  // Warm hit.
    t = rack.Access({tid, 0, pdid, va + static_cast<uint64_t>(i) * kPageSize,
                     AccessType::kRead, t})
            .completion;  // Cold fault, may evict.
  }
  auto final_hit = rack.Access({tid, 0, pdid, va, AccessType::kWrite, t});
  EXPECT_TRUE(final_hit.local_hit) << "fast-path hits failed to refresh LRU recency";
}

TEST_F(RackPipelineTest, SplitAndMergeInvalidateMemoizedDirectoryEntry) {
  SimTime t = Warm(tid0_, 0, AccessType::kWrite, 0);
  // Split the region under the warmed entry, then access: the memoized DirectoryEntry*
  // must not be reused across the split (its geometry changed).
  DirectoryEntry* entry = rack_->directory().Lookup(va_);
  ASSERT_NE(entry, nullptr);
  const VirtAddr base = entry->base;
  ASSERT_TRUE(rack_->directory().Split(base).ok());
  auto r = Go(tid0_, 0, va_, AccessType::kWrite, t);
  ASSERT_TRUE(r.status.ok());
  DirectoryEntry* after = rack_->directory().Lookup(va_);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->size_log2, entry->size_log2);  // Still the split-size child.
  ASSERT_TRUE(rack_->directory().MergeWithBuddy(base, 21).ok());
  EXPECT_TRUE(Go(tid0_, 0, va_, AccessType::kWrite, r.completion).status.ok());
}

}  // namespace
}  // namespace mind
