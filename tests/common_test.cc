// Unit tests for src/common: types, bit ops, RNG/zipfian, histogram, fairness index.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/bitops.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace mind {
namespace {

TEST(Types, PageArithmetic) {
  EXPECT_EQ(PageBase(0x1234), 0x1000u);
  EXPECT_EQ(PageBase(0x1000), 0x1000u);
  EXPECT_EQ(PageNumber(0x2fff), 2u);
  EXPECT_EQ(PageToAddr(3), 0x3000u);
  EXPECT_EQ(PageToAddr(PageNumber(0xabcd000)), 0xabcd000u);
}

TEST(Types, PermClassSemantics) {
  EXPECT_FALSE(Permits(PermClass::kNone, AccessType::kRead));
  EXPECT_FALSE(Permits(PermClass::kNone, AccessType::kWrite));
  EXPECT_TRUE(Permits(PermClass::kReadOnly, AccessType::kRead));
  EXPECT_FALSE(Permits(PermClass::kReadOnly, AccessType::kWrite));
  EXPECT_TRUE(Permits(PermClass::kReadWrite, AccessType::kRead));
  EXPECT_TRUE(Permits(PermClass::kReadWrite, AccessType::kWrite));
}

TEST(Types, BladeBitIsDistinct) {
  for (int i = 0; i < kMaxComputeBlades; ++i) {
    for (int j = i + 1; j < kMaxComputeBlades; ++j) {
      EXPECT_NE(BladeBit(static_cast<ComputeBladeId>(i)),
                BladeBit(static_cast<ComputeBladeId>(j)));
    }
  }
}

TEST(BitOps, PowerOfTwoPredicates) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(4096));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(4097));
}

TEST(BitOps, Log2RoundTrips) {
  EXPECT_EQ(Log2Floor(1), 0u);
  EXPECT_EQ(Log2Floor(4096), 12u);
  EXPECT_EQ(Log2Floor(4097), 12u);
  EXPECT_EQ(Log2Ceil(4096), 12u);
  EXPECT_EQ(Log2Ceil(4097), 13u);
  EXPECT_EQ(Log2Ceil(1), 0u);
}

TEST(BitOps, Rounding) {
  EXPECT_EQ(RoundUpPowerOfTwo(4097), 8192u);
  EXPECT_EQ(RoundUpPowerOfTwo(4096), 4096u);
  EXPECT_EQ(RoundDownPowerOfTwo(4097), 4096u);
  EXPECT_EQ(AlignUp(5, 4), 8u);
  EXPECT_EQ(AlignDown(5, 4), 4u);
  EXPECT_TRUE(IsAligned(8192, 4096));
  EXPECT_FALSE(IsAligned(8193, 4096));
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, BoundedDrawsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(99);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Zipfian, SkewsTowardLowIndices) {
  Rng rng(5);
  ZipfianGenerator zipf(1000, 0.99);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Rank-0 must dominate rank-500 by a wide margin under theta=0.99.
  EXPECT_GT(counts[0], counts[500] * 10);
  // And the head (top 10%) should hold the majority of mass.
  int head = 0;
  for (int i = 0; i < 100; ++i) {
    head += counts[i];
  }
  EXPECT_GT(head, 50000);
}

TEST(Zipfian, UniformWhenThetaZero) {
  Rng rng(5);
  ZipfianGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    counts[zipf.Next(rng)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 1500);
  }
}

TEST(Histogram, CountsAndMean) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
}

TEST(Histogram, PercentilesApproximate) {
  Histogram h;
  for (uint64_t v = 0; v < 10000; ++v) {
    h.Record(v);
  }
  // Log-bucketing gives < ~2% relative error.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 5000.0, 200.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 9900.0, 300.0);
}

TEST(Histogram, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(10);
  b.Record(20);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.sum(), 30u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 20u);
}

TEST(JainIndex, PerfectBalance) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({100, 100, 100, 100}), 1.0);
}

TEST(JainIndex, WorstCase) {
  // All load on one of n entities => index = 1/n.
  EXPECT_NEAR(JainFairnessIndex({400, 0, 0, 0}), 0.25, 1e-9);
}

TEST(JainIndex, EmptyAndZeroAreFair) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({0, 0}), 1.0);
}

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status s(ErrorCode::kNoMemory, "boom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNoMemory);
  EXPECT_EQ(s.ToString(), "no-memory: boom");
}

TEST(Result, ValueAndStatusPaths) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err(Status(ErrorCode::kNotFound));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace mind
