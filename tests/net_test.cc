// Unit tests for src/net: fabric link contention, multicast pruning, reliability protocol.
#include <gtest/gtest.h>

#include "src/common/bitops.h"
#include "src/net/fabric.h"
#include "src/net/message.h"
#include "src/net/reliability.h"

namespace mind {
namespace {

LatencyModel Lat() { return LatencyModel{}; }

TEST(Message, PagePayloadClassification) {
  EXPECT_TRUE(CarriesPage(MessageKind::kRdmaReadResponse));
  EXPECT_TRUE(CarriesPage(MessageKind::kRdmaWriteRequest));
  EXPECT_FALSE(CarriesPage(MessageKind::kRdmaReadRequest));
  EXPECT_FALSE(CarriesPage(MessageKind::kInvalidation));
  EXPECT_FALSE(CarriesPage(MessageKind::kInvalidationAck));
}

TEST(Fabric, ControlTransferTiming) {
  Fabric f(2, 2, Lat());
  const auto d = f.ToSwitch(Endpoint::Compute(0), MessageKind::kRdmaReadRequest, 0);
  // overhead(300) + serialize(64B ~ 5ns) + propagation(1000).
  EXPECT_NEAR(static_cast<double>(d.arrival), 1305.0, 10.0);
  EXPECT_EQ(d.link_wait, 0u);
}

TEST(Fabric, PageTransferSlowerThanControl) {
  Fabric f(2, 2, Lat());
  const auto ctrl = f.FromSwitch(Endpoint::Compute(0), MessageKind::kInvalidation, 0);
  const auto page = f.FromSwitch(Endpoint::Compute(1), MessageKind::kRdmaReadResponse, 0);
  EXPECT_GT(page.arrival, ctrl.arrival);
}

TEST(Fabric, SameLinkSerializes) {
  Fabric f(2, 2, Lat());
  const auto d1 = f.FromSwitch(Endpoint::Compute(0), MessageKind::kRdmaReadResponse, 0);
  const auto d2 = f.FromSwitch(Endpoint::Compute(0), MessageKind::kRdmaReadResponse, 0);
  EXPECT_GT(d2.arrival, d1.arrival);
  EXPECT_GT(d2.link_wait, 0u);
}

TEST(Fabric, DistinctBladesParallel) {
  Fabric f(2, 2, Lat());
  const auto d1 = f.FromSwitch(Endpoint::Compute(0), MessageKind::kRdmaReadResponse, 0);
  const auto d2 = f.FromSwitch(Endpoint::Compute(1), MessageKind::kRdmaReadResponse, 0);
  EXPECT_EQ(d1.arrival, d2.arrival);  // Independent egress ports.
}

TEST(Fabric, TxAndRxAreFullDuplex) {
  Fabric f(1, 1, Lat());
  const auto up = f.ToSwitch(Endpoint::Compute(0), MessageKind::kRdmaWriteRequest, 0);
  const auto down = f.FromSwitch(Endpoint::Compute(0), MessageKind::kRdmaReadResponse, 0);
  EXPECT_EQ(up.arrival, down.arrival);  // No shared queue between directions.
}

TEST(Fabric, MulticastReachesExactlySharers) {
  Fabric f(8, 1, Lat());
  const SharerMask sharers = BladeBit(1) | BladeBit(3) | BladeBit(6);
  const auto deliveries = f.MulticastInvalidation(sharers, 0);
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0].blade, 1);
  EXPECT_EQ(deliveries[1].blade, 3);
  EXPECT_EQ(deliveries[2].blade, 6);
  // Egress-pruned multicast: copies go out in parallel on distinct ports.
  EXPECT_EQ(deliveries[0].delivery.arrival, deliveries[2].delivery.arrival);
  EXPECT_EQ(f.invalidations_sent(), 3u);
  EXPECT_EQ(f.multicast_operations(), 1u);
}

TEST(Fabric, UnicastSlowerThanMulticastForFanout) {
  Fabric fm(8, 1, Lat());
  Fabric fu(8, 1, Lat());
  SharerMask all = 0;
  for (int i = 0; i < 8; ++i) {
    all |= BladeBit(static_cast<ComputeBladeId>(i));
  }
  const auto mc = fm.MulticastInvalidation(all, 0);
  const auto uc = fu.UnicastInvalidations(all, 0);
  SimTime mc_last = 0;
  SimTime uc_last = 0;
  for (const auto& d : mc) {
    mc_last = std::max(mc_last, d.delivery.arrival);
  }
  for (const auto& d : uc) {
    uc_last = std::max(uc_last, d.delivery.arrival);
  }
  // Sequential software sends pay per-message issue cost before fan-out completes.
  EXPECT_GT(uc_last, mc_last);
}

TEST(Fabric, EmptyMaskNoDeliveries) {
  Fabric f(4, 1, Lat());
  EXPECT_TRUE(f.MulticastInvalidation(0, 0).empty());
  EXPECT_EQ(f.invalidations_sent(), 0u);
}

TEST(Reliability, LossFreeSingleAttempt) {
  ReliabilityTracker r;
  const auto out = r.SendWithAck(9000);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.latency, 9000u);
  EXPECT_EQ(r.snapshot().timeouts, 0u);
}

TEST(Reliability, LossyEventuallyDelivers) {
  ReliabilityConfig cfg;
  cfg.loss_probability = 0.5;
  cfg.max_retransmissions = 50;
  ReliabilityTracker r(cfg);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    const auto out = r.SendWithAck(1000);
    if (!out.delivered) {
      ++failures;
    } else if (out.attempts > 1) {
      // Retried sends pay the timeout before succeeding.
      EXPECT_GT(out.latency, 1000u);
    }
  }
  EXPECT_EQ(failures, 0);  // 50 retries at p=0.5 practically never exhaust.
  const ReliabilityTracker::Snapshot snap = r.snapshot();
  EXPECT_GT(snap.timeouts, 0u);
  EXPECT_GT(snap.retransmissions, 0u);
}

TEST(Reliability, AlwaysLostTriggersReset) {
  ReliabilityConfig cfg;
  cfg.loss_probability = 1.0;
  cfg.max_retransmissions = 3;
  ReliabilityTracker r(cfg);
  const auto out = r.SendWithAck(1000);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, 4);  // Initial + 3 retransmissions.
  EXPECT_EQ(r.snapshot().resets_triggered, 1u);
  EXPECT_EQ(out.latency, 4 * cfg.ack_timeout);
}

TEST(Reliability, ZeroRetransmissionBudgetAlwaysLost) {
  // Degenerate budget: the initial send is the only attempt. Exhaustion pays exactly one
  // ack_timeout (no base RTT lands — the message never arrived) and counts one timeout,
  // zero retransmissions, one reset.
  ReliabilityConfig cfg;
  cfg.loss_probability = 1.0;
  cfg.max_retransmissions = 0;
  ReliabilityTracker r(cfg);
  const auto out = r.SendWithAck(9000);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.latency, cfg.ack_timeout);
  const ReliabilityTracker::Snapshot snap = r.snapshot();
  EXPECT_EQ(snap.timeouts, 1u);
  EXPECT_EQ(snap.retransmissions, 0u);
  EXPECT_EQ(snap.resets_triggered, 1u);
}

TEST(Reliability, ZeroRetransmissionBudgetLossFree) {
  // Same budget without loss: the single attempt delivers at the base RTT and nothing is
  // counted — the p = 0 fast path must stay bit-identical to no tracker at all.
  ReliabilityConfig cfg;
  cfg.loss_probability = 0.0;
  cfg.max_retransmissions = 0;
  ReliabilityTracker r(cfg);
  const auto out = r.SendWithAck(9000);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.latency, 9000u);
  EXPECT_EQ(r.snapshot(), ReliabilityTracker::Snapshot{});
}

TEST(Reliability, ExhaustedLatencySumsEveryTimeout) {
  // delivered = false means every attempt timed out: latency is exactly
  // (max_retransmissions + 1) * ack_timeout, independent of the base RTT.
  ReliabilityConfig cfg;
  cfg.loss_probability = 1.0;
  cfg.max_retransmissions = 7;
  ReliabilityTracker r(cfg);
  const auto out = r.SendWithAck(123456);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, 8);
  EXPECT_EQ(out.latency, 8 * cfg.ack_timeout);
  EXPECT_EQ(r.snapshot().timeouts, 8u);
}

}  // namespace
}  // namespace mind
