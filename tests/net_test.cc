// Unit tests for src/net: fabric link contention, multicast pruning, reliability protocol.
#include <gtest/gtest.h>

#include "src/common/bitops.h"
#include "src/net/fabric.h"
#include "src/net/message.h"
#include "src/net/reliability.h"

namespace mind {
namespace {

LatencyModel Lat() { return LatencyModel{}; }

TEST(Message, PagePayloadClassification) {
  EXPECT_TRUE(CarriesPage(MessageKind::kRdmaReadResponse));
  EXPECT_TRUE(CarriesPage(MessageKind::kRdmaWriteRequest));
  EXPECT_FALSE(CarriesPage(MessageKind::kRdmaReadRequest));
  EXPECT_FALSE(CarriesPage(MessageKind::kInvalidation));
  EXPECT_FALSE(CarriesPage(MessageKind::kInvalidationAck));
}

TEST(Fabric, ControlTransferTiming) {
  Fabric f(2, 2, Lat());
  // Blade -> switch half-route on an idle fabric:
  // serialize(64B ~ 5ns) + overhead(300) + propagation(1000) + pipeline(400).
  const auto d = f.Route(Endpoint::Compute(0), Endpoint::Switch(),
                         MessageKind::kRdmaReadRequest, 0);
  EXPECT_NEAR(static_cast<double>(d.arrival), 1705.0, 10.0);
  EXPECT_EQ(d.total_wait(), 0u);
  // Switch -> blade half-route pays no pipeline (charged on switch entry).
  const auto down =
      f.Route(Endpoint::Switch(), Endpoint::Compute(1), MessageKind::kInvalidation, 0);
  EXPECT_NEAR(static_cast<double>(down.arrival), 1305.0, 10.0);
}

TEST(Fabric, PageTransferSlowerThanControl) {
  Fabric f(2, 2, Lat());
  const auto ctrl =
      f.Route(Endpoint::Switch(), Endpoint::Compute(0), MessageKind::kInvalidation, 0);
  const auto page =
      f.Route(Endpoint::Switch(), Endpoint::Compute(1), MessageKind::kRdmaReadResponse, 0);
  EXPECT_GT(page.arrival, ctrl.arrival);
}

TEST(Fabric, SameLinkSerializes) {
  Fabric f(2, 2, Lat());
  const auto d1 =
      f.Route(Endpoint::Switch(), Endpoint::Compute(0), MessageKind::kRdmaReadResponse, 0);
  const auto d2 =
      f.Route(Endpoint::Switch(), Endpoint::Compute(0), MessageKind::kRdmaReadResponse, 0);
  EXPECT_GT(d2.arrival, d1.arrival);
  EXPECT_GT(d2.ingress_wait, 0u);
  EXPECT_EQ(d2.total_wait(), d2.ingress_wait + d2.egress_wait + d2.switch_wait);
}

TEST(Fabric, DistinctBladesParallel) {
  Fabric f(2, 2, Lat());
  const auto d1 =
      f.Route(Endpoint::Switch(), Endpoint::Compute(0), MessageKind::kRdmaReadResponse, 0);
  const auto d2 =
      f.Route(Endpoint::Switch(), Endpoint::Compute(1), MessageKind::kRdmaReadResponse, 0);
  EXPECT_EQ(d1.arrival, d2.arrival);  // Independent ingress ports.
}

TEST(Fabric, TxAndRxAreFullDuplex) {
  Fabric busy(1, 1, Lat());
  const auto up = busy.Route(Endpoint::Compute(0), Endpoint::Switch(),
                             MessageKind::kRdmaWriteRequest, 0);
  const auto down = busy.Route(Endpoint::Switch(), Endpoint::Compute(0),
                               MessageKind::kRdmaReadResponse, 0);
  // No shared queue between directions: the prior tx send leaves the rx path idle.
  EXPECT_EQ(up.total_wait(), 0u);
  EXPECT_EQ(down.total_wait(), 0u);
  Fabric idle(1, 1, Lat());
  const auto down_idle = idle.Route(Endpoint::Switch(), Endpoint::Compute(0),
                                    MessageKind::kRdmaReadResponse, 0);
  EXPECT_EQ(down.arrival, down_idle.arrival);
}

TEST(Fabric, FullRouteComposesHalfRoutes) {
  // Blade -> blade routing must decompose into the two half-routes exactly (kFifo).
  Fabric whole(2, 2, Lat());
  Fabric halves(2, 2, Lat());
  const auto full = whole.Route(Endpoint::Compute(0), Endpoint::Memory(1),
                                MessageKind::kRdmaWriteRequest, 17);
  const auto up = halves.Route(Endpoint::Compute(0), Endpoint::Switch(),
                               MessageKind::kRdmaWriteRequest, 17);
  const auto down = halves.Route(Endpoint::Switch(), Endpoint::Memory(1),
                                 MessageKind::kRdmaWriteRequest, up.arrival);
  EXPECT_EQ(full.arrival, down.arrival);
}

TEST(Fabric, RttComposesRequestServiceResponse) {
  Fabric f(1, 1, Lat());
  Fabric ref(1, 1, Lat());
  const SimTime service = Lat().memory_blade_service;
  const auto rtt =
      f.Rtt(Endpoint::Compute(0), Endpoint::Memory(0), MessageKind::kRdmaReadRequest,
            MessageKind::kRdmaReadResponse, 0, service);
  const auto req = ref.Route(Endpoint::Compute(0), Endpoint::Memory(0),
                             MessageKind::kRdmaReadRequest, 0);
  const auto resp = ref.Route(Endpoint::Memory(0), Endpoint::Compute(0),
                              MessageKind::kRdmaReadResponse, req.arrival + service);
  EXPECT_EQ(rtt.request.arrival, req.arrival);
  EXPECT_EQ(rtt.complete, resp.arrival);
  EXPECT_EQ(rtt.response.arrival, rtt.complete);
}

TEST(Fabric, RecirculationChargesExtraStage) {
  Fabric f(1, 1, Lat());
  SimTime wait = 123;  // Must be overwritten, not accumulated.
  const SimTime out = f.Recirculate(5000, &wait);
  EXPECT_EQ(out, 5000 + Lat().switch_recirculation);
  EXPECT_EQ(wait, 0u);  // Pass-through stage under kFifo.
}

TEST(Fabric, OneRttFetchCalibrationIsRouted) {
  // Fig. 7 anchor: the routed idle RTT must stay within the paper's ~9.1us band.
  const SimTime fetch = Lat().OneRttFetch();
  EXPECT_GE(fetch, 8000u);
  EXPECT_LE(fetch, 9500u);
}

TEST(Fabric, UtilizationRisesWithLoad) {
  FabricConfig cfg;
  cfg.queue_model = QueueModelKind::kWindowedMG1;
  Fabric f(2, 2, Lat(), cfg);
  EXPECT_EQ(f.Utilization(Endpoint::Memory(0)), 0.0);
  for (int i = 0; i < 64; ++i) {
    (void)f.Route(Endpoint::Switch(), Endpoint::Memory(0),
                  MessageKind::kRdmaReadResponse, 0);
  }
  EXPECT_GT(f.Utilization(Endpoint::Memory(0)), 0.0);
  EXPECT_LE(f.Utilization(Endpoint::Memory(0)), 1.0);
  EXPECT_EQ(f.Utilization(Endpoint::Memory(1)), 0.0);  // Other ports untouched.
}

TEST(Fabric, MulticastReachesExactlySharers) {
  Fabric f(8, 1, Lat());
  const SharerMask sharers = BladeBit(1) | BladeBit(3) | BladeBit(6);
  const auto deliveries = f.MulticastInvalidation(sharers, 0);
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0].blade, 1);
  EXPECT_EQ(deliveries[1].blade, 3);
  EXPECT_EQ(deliveries[2].blade, 6);
  // Egress-pruned multicast: copies go out in parallel on distinct ports.
  EXPECT_EQ(deliveries[0].delivery.arrival, deliveries[2].delivery.arrival);
  EXPECT_EQ(f.invalidations_sent(), 3u);
  EXPECT_EQ(f.multicast_operations(), 1u);
}

TEST(Fabric, UnicastSlowerThanMulticastForFanout) {
  Fabric fm(8, 1, Lat());
  Fabric fu(8, 1, Lat());
  SharerMask all = 0;
  for (int i = 0; i < 8; ++i) {
    all |= BladeBit(static_cast<ComputeBladeId>(i));
  }
  const auto mc = fm.MulticastInvalidation(all, 0);
  const auto uc = fu.UnicastInvalidations(all, 0);
  SimTime mc_last = 0;
  SimTime uc_last = 0;
  for (const auto& d : mc) {
    mc_last = std::max(mc_last, d.delivery.arrival);
  }
  for (const auto& d : uc) {
    uc_last = std::max(uc_last, d.delivery.arrival);
  }
  // Sequential software sends pay per-message issue cost before fan-out completes.
  EXPECT_GT(uc_last, mc_last);
}

TEST(Fabric, EmptyMaskNoDeliveries) {
  Fabric f(4, 1, Lat());
  EXPECT_TRUE(f.MulticastInvalidation(0, 0).empty());
  EXPECT_EQ(f.invalidations_sent(), 0u);
}

TEST(Reliability, LossFreeSingleAttempt) {
  ReliabilityTracker r;
  const auto out = r.SendWithAck(9000);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.latency, 9000u);
  EXPECT_EQ(r.snapshot().timeouts, 0u);
}

TEST(Reliability, LossyEventuallyDelivers) {
  ReliabilityConfig cfg;
  cfg.loss_probability = 0.5;
  cfg.max_retransmissions = 50;
  ReliabilityTracker r(cfg);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    const auto out = r.SendWithAck(1000);
    if (!out.delivered) {
      ++failures;
    } else if (out.attempts > 1) {
      // Retried sends pay the timeout before succeeding.
      EXPECT_GT(out.latency, 1000u);
    }
  }
  EXPECT_EQ(failures, 0);  // 50 retries at p=0.5 practically never exhaust.
  const ReliabilityTracker::Snapshot snap = r.snapshot();
  EXPECT_GT(snap.timeouts, 0u);
  EXPECT_GT(snap.retransmissions, 0u);
}

TEST(Reliability, AlwaysLostTriggersReset) {
  ReliabilityConfig cfg;
  cfg.loss_probability = 1.0;
  cfg.max_retransmissions = 3;
  ReliabilityTracker r(cfg);
  const auto out = r.SendWithAck(1000);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, 4);  // Initial + 3 retransmissions.
  EXPECT_EQ(r.snapshot().resets_triggered, 1u);
  EXPECT_EQ(out.latency, 4 * cfg.ack_timeout);
}

TEST(Reliability, ZeroRetransmissionBudgetAlwaysLost) {
  // Degenerate budget: the initial send is the only attempt. Exhaustion pays exactly one
  // ack_timeout (no base RTT lands — the message never arrived) and counts one timeout,
  // zero retransmissions, one reset.
  ReliabilityConfig cfg;
  cfg.loss_probability = 1.0;
  cfg.max_retransmissions = 0;
  ReliabilityTracker r(cfg);
  const auto out = r.SendWithAck(9000);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.latency, cfg.ack_timeout);
  const ReliabilityTracker::Snapshot snap = r.snapshot();
  EXPECT_EQ(snap.timeouts, 1u);
  EXPECT_EQ(snap.retransmissions, 0u);
  EXPECT_EQ(snap.resets_triggered, 1u);
}

TEST(Reliability, ZeroRetransmissionBudgetLossFree) {
  // Same budget without loss: the single attempt delivers at the base RTT and nothing is
  // counted — the p = 0 fast path must stay bit-identical to no tracker at all.
  ReliabilityConfig cfg;
  cfg.loss_probability = 0.0;
  cfg.max_retransmissions = 0;
  ReliabilityTracker r(cfg);
  const auto out = r.SendWithAck(9000);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.latency, 9000u);
  EXPECT_EQ(r.snapshot(), ReliabilityTracker::Snapshot{});
}

TEST(Reliability, ExhaustedLatencySumsEveryTimeout) {
  // delivered = false means every attempt timed out: latency is exactly
  // (max_retransmissions + 1) * ack_timeout, independent of the base RTT.
  ReliabilityConfig cfg;
  cfg.loss_probability = 1.0;
  cfg.max_retransmissions = 7;
  ReliabilityTracker r(cfg);
  const auto out = r.SendWithAck(123456);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, 8);
  EXPECT_EQ(out.latency, 8 * cfg.ack_timeout);
  EXPECT_EQ(r.snapshot().timeouts, 8u);
}

}  // namespace
}  // namespace mind
