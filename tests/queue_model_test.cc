// Unit tests for src/net/queue_model.h: kFifo equivalence with FifoResource,
// history-list backfill + window expiry, windowed-M/G/1 load response, and the
// determinism contract — replay stays bit-identical across the execution matrix with a
// non-trivial queue model enabled under a live fault schedule.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/mind_system.h"
#include "src/net/queue_model.h"
#include "src/sim/resource.h"
#include "src/workload/generators.h"
#include "src/workload/replay.h"

namespace mind {
namespace {

FabricConfig Config(QueueModelKind kind, SimTime window = 200'000,
                    uint32_t depth = 64) {
  FabricConfig c;
  c.queue_model = kind;
  c.window_ns = window;
  c.history_depth = depth;
  return c;
}

// --- kFifo: bit-identical to the historical FifoResource ------------------------------

TEST(QueueModel, FifoBitIdenticalToFifoResource) {
  const auto model = MakeQueueModel(Config(QueueModelKind::kFifo));
  FifoResource reference;
  // A deterministic mix of backlogged, idle-gap and zero-service requests.
  SimTime arrival = 0;
  for (int i = 0; i < 500; ++i) {
    const SimTime service = static_cast<SimTime>((i * 37) % 400);
    arrival += static_cast<SimTime>((i * 13) % 250);
    const auto got = model->Acquire(arrival, service);
    const auto want = reference.Acquire(arrival, service);
    ASSERT_EQ(got.start, want.start) << "request " << i;
    ASSERT_EQ(got.finish, want.finish) << "request " << i;
    ASSERT_EQ(got.wait, want.wait) << "request " << i;
  }
  EXPECT_EQ(model->total_busy(), reference.total_busy());
  EXPECT_EQ(model->total_wait(), reference.total_wait());
  EXPECT_EQ(model->jobs(), reference.jobs());
}

TEST(QueueModel, FifoStageModelIsPassThrough) {
  // Historical switch pipeline: a flat constant every message pays concurrently. The
  // default stage model must never add wait, whatever the backlog.
  const auto stage = MakeStageModel(Config(QueueModelKind::kFifo));
  for (int i = 0; i < 100; ++i) {
    const auto g = stage->Acquire(/*arrival=*/50, /*service=*/1000);
    EXPECT_EQ(g.start, 50u);
    EXPECT_EQ(g.finish, 1050u);
    EXPECT_EQ(g.wait, 0u);
  }
  // Demand is still recorded: occupancy feedback works under the default too.
  EXPECT_GT(stage->Utilization(), 0.0);
}

// --- History list: backfill + window expiry --------------------------------------------

TEST(QueueModel, HistoryListBackfillsGapFifoCannot) {
  const auto hist = MakeQueueModel(Config(QueueModelKind::kHistoryList));
  const auto fifo = MakeQueueModel(Config(QueueModelKind::kFifo));
  // A page transfer arriving at t=50 leaves the interval [0, 50) free.
  (void)hist->Acquire(/*arrival=*/50, /*service=*/100);
  (void)fifo->Acquire(/*arrival=*/50, /*service=*/100);
  // A short control message arriving at t=0 fits in front of it.
  const auto h = hist->Acquire(/*arrival=*/0, /*service=*/40);
  const auto f = fifo->Acquire(/*arrival=*/0, /*service=*/40);
  EXPECT_EQ(h.start, 0u);
  EXPECT_EQ(h.wait, 0u);
  EXPECT_EQ(f.start, 150u);  // Busy-until FIFO queues it behind the page.
  EXPECT_EQ(f.wait, 150u);
}

TEST(QueueModel, HistoryListSerializesWhenNoGapFits) {
  const auto hist = MakeQueueModel(Config(QueueModelKind::kHistoryList));
  const auto a = hist->Acquire(/*arrival=*/0, /*service=*/100);
  const auto b = hist->Acquire(/*arrival=*/0, /*service=*/100);
  EXPECT_EQ(a.start, 0u);
  EXPECT_EQ(b.start, 100u);  // No gap in front: behaves like FIFO.
  EXPECT_EQ(b.wait, 100u);
}

TEST(QueueModel, HistoryListWindowExpiry) {
  // Small window: demand and free-interval history older than it must be forgotten.
  const auto hist = MakeQueueModel(Config(QueueModelKind::kHistoryList,
                                          /*window=*/1'000));
  for (int i = 0; i < 8; ++i) {
    (void)hist->Acquire(static_cast<SimTime>(i) * 10, /*service=*/100);
  }
  EXPECT_GT(hist->Utilization(), 0.0);
  EXPECT_GT(hist->QueueDepth(), 0u);
  // Jump far past the window: old demand expires and the tail is reachable again.
  const auto late = hist->Acquire(/*arrival=*/1'000'000, /*service=*/10);
  EXPECT_EQ(late.wait, 0u);
  EXPECT_EQ(hist->QueueDepth(), 1u);  // Only the late request remains in the window.
  EXPECT_EQ(hist->demand_sum(), 10u);
}

TEST(QueueModel, HistoryListBoundsFreeIntervals) {
  // Punch many disjoint gaps with a tiny depth bound: the list must stay bounded and the
  // model must keep granting (dropped gaps degrade to tail allocation, never crash).
  const auto hist = MakeQueueModel(Config(QueueModelKind::kHistoryList,
                                          /*window=*/10'000'000, /*depth=*/4));
  for (int i = 0; i < 200; ++i) {
    (void)hist->Acquire(static_cast<SimTime>(i) * 1'000, /*service=*/10);
  }
  const auto g = hist->Acquire(/*arrival=*/200'000, /*service=*/10);
  EXPECT_GE(g.start, 200'000u);
  EXPECT_EQ(g.finish, g.start + 10);
}

// --- Windowed M/G/1: analytical load response ------------------------------------------

TEST(QueueModel, WindowedMG1IdlePortHasNoWait) {
  const auto model = MakeQueueModel(Config(QueueModelKind::kWindowedMG1));
  const auto g = model->Acquire(/*arrival=*/0, /*service=*/500);
  EXPECT_EQ(g.wait, 0u);  // First request sees an empty window.
  EXPECT_EQ(g.finish, 500u);
}

TEST(QueueModel, WindowedMG1WaitRisesWithOfferedLoad) {
  // Same service, increasing arrival density: the M/G/1 estimate must be monotone in
  // windowed utilization and stay finite at saturation (rho clamp).
  constexpr SimTime kService = 1'000;
  SimTime last_wait = 0;
  for (const int jobs : {4, 16, 64, 160}) {
    const auto model = MakeQueueModel(Config(QueueModelKind::kWindowedMG1,
                                             /*window=*/100'000));
    QueueModel::Grant g{};
    for (int i = 0; i < jobs; ++i) {
      g = model->Acquire(/*arrival=*/static_cast<SimTime>(i), kService);
    }
    EXPECT_GE(g.wait, last_wait) << jobs << " jobs";
    last_wait = g.wait;
  }
  EXPECT_GT(last_wait, 0u);
  // rho <= 0.98 bounds the estimate at rho*S/(2(1-rho)) = 24.5 * S.
  EXPECT_LE(last_wait, 25 * kService);
}

TEST(QueueModel, WindowedMG1UtilizationIsPureFunctionOfStream) {
  // Two models fed the same serialized stream must agree exactly — Utilization() has no
  // "current time" input that could diverge across replay modes.
  const auto a = MakeQueueModel(Config(QueueModelKind::kWindowedMG1));
  const auto b = MakeQueueModel(Config(QueueModelKind::kWindowedMG1));
  for (int i = 0; i < 100; ++i) {
    const SimTime arrival = static_cast<SimTime>(i) * 777;
    const SimTime service = static_cast<SimTime>((i * 31) % 900);
    const auto ga = a->Acquire(arrival, service);
    const auto gb = b->Acquire(arrival, service);
    ASSERT_EQ(ga.start, gb.start);
    ASSERT_EQ(ga.wait, gb.wait);
    ASSERT_DOUBLE_EQ(a->Utilization(), b->Utilization());
  }
}

// --- Determinism: the execution matrix with a live queue model + fault schedule --------

struct RunResult {
  ReplayReport report;
  std::string semantic_bytes;
  uint64_t digest = 0;
};

RunResult RunMind(const RackConfig& config, const WorkloadTraces& traces,
                  ReplayOptions opts) {
  opts.trace = true;
  MindSystem sys(config);
  ReplayEngine engine(&sys, &traces, opts);
  EXPECT_TRUE(engine.Setup().ok());
  RunResult out;
  out.report = engine.Run();
  const TraceScope* scope = engine.trace_scope();
  EXPECT_NE(scope, nullptr);
  out.semantic_bytes = scope->SemanticBytes();
  out.digest = scope->SemanticDigest();
  return out;
}

TEST(QueueModel, ShardedReplayBitIdenticalWithMG1UnderFaults) {
  // The acceptance case: a coherence-dense trace on a kWindowedMG1 fabric with message
  // loss, a blade death and a scheduled drain. Counters, histograms AND the canonical
  // semantic byte stream must be identical across 1/2/4/8 shards and groups on/off.
  RackConfig config;
  config.num_compute_blades = 4;
  config.num_memory_blades = 4;
  config.memory_blade_capacity = 2ull << 30;
  config.compute_cache_bytes = 8ull << 20;
  config.directory_slots = 2048;
  config.splitting.epoch_length = 2 * kMillisecond;
  config.fabric = Config(QueueModelKind::kWindowedMG1);
  config.prefetch.policy = PrefetchPolicy::kNextN;  // Exercises occupancy throttling.
  config.fault.reliability.loss_probability = 0.02;
  config.fault.death.blade = 1;
  config.fault.death.at = 40 * kMillisecond;
  config.fault.drains.push_back(
      FaultPlaneConfig::BladeDrain{/*blade=*/0, /*dst=*/1, /*at=*/20 * kMillisecond});

  WorkloadSpec spec = MemcachedASpec(/*blades=*/4, /*threads_per_blade=*/2,
                                     /*accesses_per_thread=*/2000);
  spec.shared_pages = 4096;
  const WorkloadTraces traces = GenerateTraces(spec);

  ReplayOptions ref_opts;
  ref_opts.use_channels = false;
  const RunResult want = RunMind(config, traces, ref_opts);
  ASSERT_GT(want.report.total_ops, 0u);

  struct Mode {
    bool groups;
    int shards;
  };
  for (const Mode& m : std::vector<Mode>{{true, 1}, {true, 2}, {true, 4}, {true, 8},
                                         {false, 4}}) {
    SCOPED_TRACE(::testing::Message()
                 << (m.groups ? "groups" : "plain") << "/" << m.shards << "shards");
    ReplayOptions opts;
    opts.shards = m.shards;
    opts.use_channel_groups = m.groups;
    const RunResult got = RunMind(config, traces, opts);
    EXPECT_EQ(want.report.makespan, got.report.makespan);
    EXPECT_EQ(want.report.total_ops, got.report.total_ops);
    EXPECT_EQ(want.report.counters.total_accesses, got.report.counters.total_accesses);
    EXPECT_EQ(want.report.counters.invalidations, got.report.counters.invalidations);
    EXPECT_EQ(want.report.counters.breakdown_sums.fabric_wait,
              got.report.counters.breakdown_sums.fabric_wait);
    EXPECT_TRUE(want.report.latency_histogram == got.report.latency_histogram);
    EXPECT_EQ(want.digest, got.digest);
    EXPECT_EQ(want.semantic_bytes, got.semantic_bytes);  // Byte-for-byte.
  }
}

TEST(QueueModel, QueueModelsActuallyChangeTimingUnderLoad) {
  // Sanity that the matrix above is not vacuous: a contended run must produce nonzero
  // fabric wait under kWindowedMG1 and a different makespan than the kFifo default.
  RackConfig fifo_cfg;
  fifo_cfg.num_compute_blades = 4;
  fifo_cfg.num_memory_blades = 2;  // Few ports: concentrated incast.
  fifo_cfg.compute_cache_bytes = 8ull << 20;
  RackConfig mg1_cfg = fifo_cfg;
  mg1_cfg.fabric = Config(QueueModelKind::kWindowedMG1);

  WorkloadSpec spec = MemcachedASpec(/*blades=*/4, /*threads_per_blade=*/2,
                                     /*accesses_per_thread=*/2000);
  spec.shared_pages = 4096;
  spec.think_time = 0;  // Saturating offered load.
  const WorkloadTraces traces = GenerateTraces(spec);

  ReplayOptions opts;
  const RunResult fifo = RunMind(fifo_cfg, traces, opts);
  const RunResult mg1 = RunMind(mg1_cfg, traces, opts);
  EXPECT_GT(mg1.report.counters.breakdown_sums.fabric_wait, 0u);
  EXPECT_NE(mg1.report.makespan, fifo.report.makespan);
  EXPECT_NE(mg1.digest, fifo.digest);  // Access spans carry the changed timing.
}

}  // namespace
}  // namespace mind
