// Determinism tests for the channel-based replay engine: replaying the same trace with 1,
// 2, 4 or 8 shards — threads or no threads, any scan window, any drain policy — must
// produce results bit-identical to the per-op reference path (use_channels = false: every
// op through MemorySystem::Access on the global min-heap): same makespan, same counter
// block, same latency histogram (every bucket), same throughput. The epoch-barrier merge
// design makes this a hard invariant, not a tolerance. Cross-system conformance of the
// AccessChannel contract itself (MIND, GAM, FastSwap) lives in access_channel_test.cc.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/baselines/gam.h"
#include "src/baselines/mind_system.h"
#include "src/workload/generators.h"
#include "src/workload/replay.h"

namespace mind {
namespace {

RackConfig TestRackConfig(int blades) {
  RackConfig c;
  c.num_compute_blades = blades;
  c.num_memory_blades = 4;
  c.memory_blade_capacity = 2ull << 30;
  c.compute_cache_bytes = 8ull << 20;  // Small cache: real LRU evictions during replay.
  c.directory_slots = 2048;            // Small directory: capacity evictions + merges.
  c.tcam_rules = 45000;
  c.splitting.epoch_length = 2 * kMillisecond;  // Many epoch boundaries per run.
  return c;
}

WorkloadSpec CoherenceHeavySpec(int blades) {
  // Memcached/YCSB-A flavor: zipfian shared table with 50/50 GET/SET plus hot metadata —
  // dense invalidation waves, upgrades and directory splits crossing shard ownership.
  WorkloadSpec spec = MemcachedASpec(blades, /*threads_per_blade=*/2,
                                     /*accesses_per_thread=*/4000);
  spec.shared_pages = 4096;
  return spec;
}

WorkloadSpec HitHeavySpec(int blades) {
  // Blade-resident flavor: per-thread working sets that fit the 2048-frame test cache —
  // after warmup >80% of ops are blade-local hit runs, the case the parallel phase
  // accelerates. (The TF preset streams far past this cache and is covered as the
  // miss-dominant identity case in access_channel_test.cc.)
  WorkloadSpec spec;
  spec.name = "blade-resident";
  spec.num_blades = blades;
  spec.threads_per_blade = 1;
  spec.private_pages_per_thread = 1024;
  spec.private_pattern = Pattern::kUniform;
  spec.private_write_fraction = 0.5;
  spec.accesses_per_thread = 6000;
  spec.think_time = 200;
  spec.seed = 7;
  return spec;
}

void ExpectReportsIdentical(const ReplayReport& want, const ReplayReport& got) {
  EXPECT_EQ(want.makespan, got.makespan);
  EXPECT_EQ(want.total_ops, got.total_ops);
  EXPECT_EQ(want.counters.total_accesses, got.counters.total_accesses);
  EXPECT_EQ(want.counters.local_hits, got.counters.local_hits);
  EXPECT_EQ(want.counters.remote_accesses, got.counters.remote_accesses);
  EXPECT_EQ(want.counters.invalidations, got.counters.invalidations);
  EXPECT_EQ(want.counters.pages_flushed, got.counters.pages_flushed);
  EXPECT_EQ(want.counters.false_invalidations, got.counters.false_invalidations);
  EXPECT_EQ(want.counters.breakdown_sums.fault, got.counters.breakdown_sums.fault);
  EXPECT_EQ(want.counters.breakdown_sums.network, got.counters.breakdown_sums.network);
  EXPECT_EQ(want.counters.breakdown_sums.inv_queue, got.counters.breakdown_sums.inv_queue);
  EXPECT_EQ(want.counters.breakdown_sums.inv_tlb, got.counters.breakdown_sums.inv_tlb);
  EXPECT_TRUE(want.latency_histogram == got.latency_histogram);
  EXPECT_DOUBLE_EQ(want.avg_latency_us, got.avg_latency_us);
  EXPECT_DOUBLE_EQ(want.throughput_mops, got.throughput_mops);
}

ReplayReport SerialReference(const WorkloadTraces& traces, const RackConfig& config) {
  MindSystem sys(config);
  ReplayOptions opts;
  opts.use_channels = false;  // Per-op reference: one virtual Access per op.
  ReplayEngine engine(&sys, &traces, opts);
  EXPECT_TRUE(engine.Setup().ok());
  return engine.Run();
}

ReplayReport RunSharded(const WorkloadTraces& traces, const RackConfig& config,
                        ReplayOptions opts,
                        std::vector<ShardReport>* shard_reports = nullptr) {
  MindSystem sys(config);
  ReplayEngine engine(&sys, &traces, opts);
  EXPECT_TRUE(engine.Setup().ok());
  ReplayReport report = engine.Run();
  if (shard_reports != nullptr) {
    *shard_reports = engine.shard_reports();
  }
  return report;
}

TEST(ShardedReplay, BitIdenticalAcrossShardCountsCoherenceHeavy) {
  const RackConfig config = TestRackConfig(4);
  const WorkloadTraces traces = GenerateTraces(CoherenceHeavySpec(4));
  const ReplayReport want = SerialReference(traces, config);
  ASSERT_GT(want.total_ops, 0u);
  ASSERT_GT(want.counters.invalidations, 0u);  // The workload must cross shards.
  for (const int shards : {1, 2, 8}) {
    SCOPED_TRACE(shards);
    ReplayOptions opts;
    opts.shards = shards;
    ExpectReportsIdentical(want, RunSharded(traces, config, opts));
  }
}

TEST(ShardedReplay, BitIdenticalAcrossShardCountsHitHeavy) {
  const RackConfig config = TestRackConfig(8);
  const WorkloadTraces traces = GenerateTraces(HitHeavySpec(8));
  const ReplayReport want = SerialReference(traces, config);
  for (const int shards : {1, 2, 4, 8}) {
    SCOPED_TRACE(shards);
    ReplayOptions opts;
    opts.shards = shards;
    std::vector<ShardReport> shard_reports;
    const ReplayReport got = RunSharded(traces, config, opts, &shard_reports);
    ExpectReportsIdentical(want, got);
    // Accounting closes: every op was committed by exactly one shard phase.
    uint64_t accounted = 0;
    for (const ShardReport& sr : shard_reports) {
      accounted += sr.parallel_hits + sr.drained_ops;
    }
    EXPECT_EQ(accounted, got.total_ops);
    uint64_t parallel = 0;
    for (const ShardReport& sr : shard_reports) {
      parallel += sr.parallel_hits;
    }
    EXPECT_GT(parallel, 0u);  // The channel fast path must actually engage.
  }
}

TEST(ShardedReplay, BitIdenticalUnderPso) {
  RackConfig config = TestRackConfig(4);
  config.consistency = ConsistencyModel::kPso;
  const WorkloadTraces traces = GenerateTraces(CoherenceHeavySpec(4));
  const ReplayReport want = SerialReference(traces, config);
  for (const int shards : {2, 4}) {
    SCOPED_TRACE(shards);
    ReplayOptions opts;
    opts.shards = shards;
    ExpectReportsIdentical(want, RunSharded(traces, config, opts));
  }
}

TEST(ShardedReplay, BitIdenticalWithForcedWorkerThreads) {
  // Real worker threads even on single-core CI hosts; this is the TSan-exercised path.
  const RackConfig config = TestRackConfig(4);
  const WorkloadTraces traces = GenerateTraces(CoherenceHeavySpec(4));
  const ReplayReport want = SerialReference(traces, config);
  ReplayOptions opts;
  opts.shards = 4;
  opts.force_threads = true;
  ExpectReportsIdentical(want, RunSharded(traces, config, opts));
}

TEST(ShardedReplay, BitIdenticalUnderStressedRoundMachinery) {
  // Tiny scan windows and a one-op drain maximize rounds and barrier crossings; the
  // result must not move.
  const RackConfig config = TestRackConfig(4);
  const WorkloadTraces traces = GenerateTraces(CoherenceHeavySpec(4));
  const ReplayReport want = SerialReference(traces, config);
  ReplayOptions opts;
  opts.shards = 2;
  opts.scan_window_ops = 3;
  opts.drain_max_coherence_ops = 1;
  opts.drain_hit_streak_exit = 2;
  ExpectReportsIdentical(want, RunSharded(traces, config, opts));
}

TEST(ShardedReplay, BitIdenticalWithStoredPayloads) {
  RackConfig config = TestRackConfig(2);
  config.store_data = true;  // Payloads flow through the per-blade slab arenas.
  const WorkloadTraces traces = GenerateTraces(CoherenceHeavySpec(2));
  const ReplayReport want = SerialReference(traces, config);
  ReplayOptions opts;
  opts.shards = 2;
  ExpectReportsIdentical(want, RunSharded(traces, config, opts));
}

// Forwards every MemorySystem call but inherits the default (null) OpenChannel: the
// opt-out contract must route every op through the serialized drain and still match the
// per-op reference exactly.
class NoChannelSystem final : public MemorySystem {
 public:
  explicit NoChannelSystem(MemorySystem* inner) : inner_(inner) {}
  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] int num_compute_blades() const override {
    return inner_->num_compute_blades();
  }
  Result<VirtAddr> Alloc(uint64_t size) override { return inner_->Alloc(size); }
  Result<ThreadId> RegisterThread(ComputeBladeId blade) override {
    return inner_->RegisterThread(blade);
  }
  AccessResult Access(ThreadId tid, ComputeBladeId blade, VirtAddr va, AccessType type,
                      SimTime now) override {
    return inner_->Access(tid, blade, va, type, now);
  }
  [[nodiscard]] SystemCounters counters() const override { return inner_->counters(); }
  void AdvanceTo(SimTime now) override { inner_->AdvanceTo(now); }

 private:
  MemorySystem* inner_;
};

TEST(ShardedReplay, SystemWithoutChannelsSerializes) {
  const RackConfig config = TestRackConfig(4);
  const WorkloadTraces traces = GenerateTraces(HitHeavySpec(4));

  MindSystem serial_sys(config);
  ReplayOptions ref;
  ref.use_channels = false;
  ReplayEngine serial(&serial_sys, &traces, ref);
  ASSERT_TRUE(serial.Setup().ok());
  const ReplayReport want = serial.Run();

  MindSystem inner(config);
  NoChannelSystem sharded_sys(&inner);
  ReplayOptions opts;
  opts.shards = 4;
  ReplayEngine sharded(&sharded_sys, &traces, opts);
  ASSERT_TRUE(sharded.Setup().ok());
  const ReplayReport got = sharded.Run();
  ExpectReportsIdentical(want, got);
  uint64_t parallel = 0;
  for (const ShardReport& sr : sharded.shard_reports()) {
    parallel += sr.parallel_hits;
  }
  EXPECT_EQ(parallel, 0u);
}

TEST(ShardedReplay, SamplerFallsBackToReferencePath) {
  const RackConfig config = TestRackConfig(4);
  const WorkloadTraces traces = GenerateTraces(HitHeavySpec(4));
  MindSystem sys(config);
  ReplayOptions opts;
  opts.shards = 4;
  ReplayEngine engine(&sys, &traces, opts);
  ASSERT_TRUE(engine.Setup().ok());
  int samples = 0;
  const ReplayReport report =
      engine.Run([&](SimTime) { ++samples; }, /*sample_interval=*/50 * kMicrosecond);
  EXPECT_GT(samples, 0);
  EXPECT_EQ(engine.effective_shards(), 1);  // Documented per-op fallback.
  EXPECT_GT(report.total_ops, 0u);
  // Everything drained: the reference path never touches a channel.
  ASSERT_EQ(engine.shard_reports().size(), 1u);
  EXPECT_EQ(engine.shard_reports()[0].parallel_hits, 0u);
  EXPECT_EQ(engine.shard_reports()[0].drained_ops, report.total_ops);
}

TEST(ShardedReplay, ShardCountClampsToBlades) {
  const RackConfig config = TestRackConfig(2);
  const WorkloadTraces traces = GenerateTraces(HitHeavySpec(2));
  MindSystem sys(config);
  ReplayOptions opts;
  opts.shards = 64;
  ReplayEngine engine(&sys, &traces, opts);
  ASSERT_TRUE(engine.Setup().ok());
  (void)engine.Run();
  EXPECT_EQ(engine.effective_shards(), 2);
}

// --- Directory-region ownership: the owner-parallel drain ---------------------------------
//
// ReplayOptions::owner_parallel_drain partitions the serialized drain itself by
// 2 MB-region ownership (src/workload/region_ownership.h): whenever every unfinished
// thread's next op below the global safety horizon is an owner-homed blade-local hit,
// shards retire those ops concurrently instead of one at a time through the global
// min-heap. Like channels and groups it is an execution strategy, never a semantic —
// these tests pin the bit-identity, the engagement, and the shard-count invariance of
// the drain composition.

uint64_t SumOwnerDrained(const std::vector<ShardReport>& reports) {
  uint64_t n = 0;
  for (const ShardReport& sr : reports) {
    n += sr.owner_drained;
  }
  return n;
}

uint64_t SumDrained(const std::vector<ShardReport>& reports) {
  uint64_t n = 0;
  for (const ShardReport& sr : reports) {
    n += sr.drained_ops;
  }
  return n;
}

TEST(OwnershipDrain, ConformanceMatrixBitIdenticalAndEngaged) {
  // 1/2/4/8 shards x groups on/off, all against the serial reference. The eligibility
  // gate never consults the shard count (OwnedByAccessor compares the accessor blade to
  // the region home), so the drain composition — how many ops drained, and how many of
  // those retired owner-parallel — must be identical across every cell of the matrix.
  const RackConfig config = TestRackConfig(8);
  const WorkloadTraces traces = GenerateTraces(HitHeavySpec(8));
  const ReplayReport want = SerialReference(traces, config);
  uint64_t owner_expected = 0;
  uint64_t drained_expected = 0;
  bool first = true;
  for (const bool groups : {true, false}) {
    for (const int shards : {1, 2, 4, 8}) {
      SCOPED_TRACE(::testing::Message()
                   << (groups ? "groups" : "plain") << "/" << shards << "shards");
      ReplayOptions opts;
      opts.shards = shards;
      opts.use_channel_groups = groups;
      std::vector<ShardReport> shard_reports;
      ExpectReportsIdentical(want, RunSharded(traces, config, opts, &shard_reports));
      const uint64_t owner = SumOwnerDrained(shard_reports);
      const uint64_t drained = SumDrained(shard_reports);
      EXPECT_GT(owner, 0u);  // The owner-parallel phases actually engage.
      EXPECT_LE(owner, drained);
      if (first) {
        owner_expected = owner;
        drained_expected = drained;
        first = false;
      } else {
        EXPECT_EQ(owner, owner_expected);
        EXPECT_EQ(drained, drained_expected);
      }
    }
  }
}

TEST(OwnershipDrain, DisabledDrainIsBitIdenticalBaseline) {
  // owner_parallel_drain = false is the pre-ownership serial drain: same results, zero
  // owner-parallel ops — on the channel path and on the per-op reference path alike.
  const RackConfig config = TestRackConfig(8);
  const WorkloadTraces traces = GenerateTraces(HitHeavySpec(8));
  const ReplayReport want = SerialReference(traces, config);
  for (const int shards : {1, 4}) {
    SCOPED_TRACE(shards);
    ReplayOptions opts;
    opts.shards = shards;
    opts.owner_parallel_drain = false;
    std::vector<ShardReport> shard_reports;
    ExpectReportsIdentical(want, RunSharded(traces, config, opts, &shard_reports));
    EXPECT_EQ(SumOwnerDrained(shard_reports), 0u);
  }
  MindSystem sys(config);
  ReplayOptions ref;
  ref.use_channels = false;
  ref.owner_parallel_drain = false;
  ReplayEngine engine(&sys, &traces, ref);
  ASSERT_TRUE(engine.Setup().ok());
  ExpectReportsIdentical(want, engine.Run());
  EXPECT_EQ(SumOwnerDrained(engine.shard_reports()), 0u);
}

TEST(OwnershipDrain, ReferencePathEngagesOwnerParallelDrain) {
  // use_channels = false drains every op, and the ownership partition must ride along
  // there too (single shard, sequential owner phases): most of a hit-heavy trace retires
  // in owner-parallel phases instead of the per-op min-heap.
  const RackConfig config = TestRackConfig(8);
  const WorkloadTraces traces = GenerateTraces(HitHeavySpec(8));
  MindSystem sys(config);
  ReplayOptions opts;
  opts.use_channels = false;
  ReplayEngine engine(&sys, &traces, opts);
  ASSERT_TRUE(engine.Setup().ok());
  const ReplayReport report = engine.Run();
  ASSERT_EQ(engine.shard_reports().size(), 1u);
  const ShardReport& sr = engine.shard_reports()[0];
  EXPECT_EQ(sr.drained_ops, report.total_ops);  // Reference path: everything drains.
  EXPECT_GT(sr.owner_drained, 0u);
  EXPECT_LE(sr.owner_drained, sr.drained_ops);
}

TEST(OwnershipDrain, ForcedWorkerThreadsExerciseOwnerPhases) {
  // Threaded owner phases (AccessOwned + per-shard scratch + Fold) even on single-core
  // hosts — the TSan-exercised variant of the owner-parallel drain.
  const RackConfig config = TestRackConfig(8);
  const WorkloadTraces traces = GenerateTraces(HitHeavySpec(8));
  const ReplayReport want = SerialReference(traces, config);
  ReplayOptions opts;
  opts.shards = 8;
  opts.force_threads = true;
  std::vector<ShardReport> shard_reports;
  ExpectReportsIdentical(want, RunSharded(traces, config, opts, &shard_reports));
  EXPECT_GT(SumOwnerDrained(shard_reports), 0u);
}

// A wave owned by one shard invalidating runs submitted on another: thread 0 (blade 0)
// is the majority accessor — and therefore region owner — of a small shared segment that
// thread 1 (blade 1) keeps cached copies of; thread 0's writes launch invalidation waves
// into blade 1 mid-run, while thread 1's own private segment stays homed at blade 1. At
// two shards the wave crosses shard ownership every time, and the result must still be
// bit-identical to the serial reference.
WorkloadTraces CrossRegionWaveTraces() {
  WorkloadTraces t;
  t.name = "cross-region-wave";
  t.num_blades = 2;
  t.think_time = 200;
  t.segments = {SegmentSpec{/*pages=*/512}, SegmentSpec{/*pages=*/512},
                SegmentSpec{/*pages=*/4}};
  ThreadTrace t0;
  ThreadTrace t1;
  for (uint64_t i = 0; i < 4000; ++i) {
    // Thread 0: dominated by the shared segment (9 of 10 ops, half writes), sparse
    // private traffic — the shared region's majority accessor by a wide margin.
    if (i % 10 != 9) {
      t0.ops.push_back({2, i % 4, i % 2 == 0 ? AccessType::kWrite : AccessType::kRead});
    } else {
      t0.ops.push_back({0, i % 512, AccessType::kRead});
    }
    // Thread 1: long blade-local runs over the middle of its private segment (region
    // homed at blade 1), with an occasional shared read that caches a copy for thread
    // 0's next wave to invalidate.
    if (i % 20 == 19) {
      t1.ops.push_back({2, i % 4, AccessType::kRead});
    } else {
      t1.ops.push_back({1, 128 + (i % 256), i % 2 == 0 ? AccessType::kRead : AccessType::kWrite});
    }
  }
  t.threads = {std::move(t0), std::move(t1)};
  return t;
}

TEST(OwnershipDrain, CrossRegionWaveInvalidatesOtherShardsRuns) {
  const RackConfig config = TestRackConfig(2);
  const WorkloadTraces traces = CrossRegionWaveTraces();
  const ReplayReport want = SerialReference(traces, config);
  ASSERT_GT(want.counters.invalidations, 0u);  // The waves actually cross blades.
  for (const int shards : {1, 2}) {
    SCOPED_TRACE(shards);
    ReplayOptions opts;
    opts.shards = shards;
    MindSystem sys(config);
    ReplayEngine engine(&sys, &traces, opts);
    ASSERT_TRUE(engine.Setup().ok());
    // The ownership map Setup built splits the two flows as designed: the contended
    // shared region homes at the wave-launching blade 0, thread 1's private region at
    // blade 1.
    EXPECT_EQ(engine.ownership().HomeBlade(engine.AddressOf(2, 0)), 0);
    EXPECT_EQ(engine.ownership().HomeBlade(engine.AddressOf(1, 256)), 1);
    ExpectReportsIdentical(want, engine.Run());
    EXPECT_GT(SumOwnerDrained(engine.shard_reports()), 0u);
  }
}

TEST(SystemCountersMerge, AddsEveryFieldWithoutDoubleCounting) {
  SystemCounters a;
  a.total_accesses = 10;
  a.local_hits = 6;
  a.remote_accesses = 4;
  a.invalidations = 3;
  a.pages_flushed = 2;
  a.false_invalidations = 1;
  a.breakdown_sums.fault = 100;
  a.breakdown_sums.network = 200;
  SystemCounters b = a;
  b.breakdown_sums.inv_queue = 50;
  a.Merge(b);
  EXPECT_EQ(a.total_accesses, 20u);
  EXPECT_EQ(a.local_hits, 12u);
  EXPECT_EQ(a.remote_accesses, 8u);
  EXPECT_EQ(a.invalidations, 6u);
  EXPECT_EQ(a.pages_flushed, 4u);
  EXPECT_EQ(a.false_invalidations, 2u);
  EXPECT_EQ(a.breakdown_sums.fault, 200u);
  EXPECT_EQ(a.breakdown_sums.network, 400u);
  EXPECT_EQ(a.breakdown_sums.inv_queue, 50u);

  const SystemCounters delta = a.DeltaSince(b);
  EXPECT_EQ(delta.total_accesses, 10u);
  EXPECT_EQ(delta.breakdown_sums.inv_queue, 0u);
}

TEST(LatencyBreakdownDelta, SubtractsEveryField) {
  LatencyBreakdown a;
  a.fault = 100;
  a.network = 200;
  a.inv_queue = 30;
  a.inv_tlb = 4;
  LatencyBreakdown b;
  b.fault = 60;
  b.network = 150;
  b.inv_queue = 30;
  b.inv_tlb = 1;
  const LatencyBreakdown d = a - b;
  EXPECT_EQ(d.fault, 40u);
  EXPECT_EQ(d.network, 50u);
  EXPECT_EQ(d.inv_queue, 0u);
  EXPECT_EQ(d.inv_tlb, 3u);
  EXPECT_EQ(d.Total(), 93u);
}

TEST(HistogramMerge, ExactBucketEqualityAfterShardedMerge) {
  Histogram whole;
  Histogram part1;
  Histogram part2;
  for (uint64_t v : {1u, 5u, 70u, 700u, 70000u, 9u}) {
    whole.Record(v);
    (v % 2 == 0 ? part1 : part2).Record(v);
  }
  Histogram merged;
  merged.Merge(part1);
  merged.Merge(part2);
  EXPECT_TRUE(whole == merged);
  EXPECT_EQ(whole.Percentile(0.5), merged.Percentile(0.5));
}

}  // namespace
}  // namespace mind
