// Integration tests for protection enforcement on the data path: permission-change
// shoot-downs, domain-tagged cached frames, and the coupled-fetch ablation knob.
#include <gtest/gtest.h>

#include "src/core/mind.h"

namespace mind {
namespace {

RackConfig Config() {
  RackConfig c;
  c.num_compute_blades = 2;
  c.num_memory_blades = 1;
  c.memory_blade_capacity = 1ull << 30;
  c.compute_cache_bytes = 16ull << 20;
  c.store_data = true;
  return c;
}

class RackProtectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rack_ = std::make_unique<Rack>(Config());
    pid_ = *rack_->Exec("prot");
    pdid_ = *rack_->controller().PdidOf(pid_);
    tid_ = rack_->SpawnThread(pid_, 0)->tid;
    va_ = *rack_->Mmap(pid_, 1 << 20, PermClass::kReadWrite);
  }

  AccessResult Go(ProtDomainId domain, VirtAddr va, AccessType t, SimTime now) {
    return rack_->Access(AccessRequest{tid_, 0, domain, va, t, now});
  }

  std::unique_ptr<Rack> rack_;
  ProcessId pid_ = kInvalidProcess;
  ProtDomainId pdid_ = 0;
  ThreadId tid_ = 0;
  VirtAddr va_ = 0;
};

TEST_F(RackProtectionTest, MprotectShootsDownCachedWritablePages) {
  SimTime t = Go(pdid_, va_, AccessType::kWrite, 0).completion;
  // The page is cached writable; a downgrade to read-only must not leave it writable.
  ASSERT_TRUE(rack_->Mprotect(pid_, va_, kPageSize, PermClass::kReadOnly).ok());
  auto w = Go(pdid_, va_, AccessType::kWrite, t);
  EXPECT_EQ(w.status.code(), ErrorCode::kPermissionDenied);
  // Reads still fine, and the dirty data survived the shoot-down (flushed to memory).
  auto r = Go(pdid_, va_, AccessType::kRead, w.completion);
  EXPECT_TRUE(r.status.ok());
  EXPECT_GE(rack_->stats().pages_flushed, 1u);
}

TEST_F(RackProtectionTest, RevokedDomainCannotUseCachedPages) {
  const ProtDomainId session = 777;
  ASSERT_TRUE(rack_->GrantToDomain(pid_, session, va_, kPageSize, PermClass::kReadOnly).ok());
  SimTime t = Go(session, va_, AccessType::kRead, 0).completion;  // Page now cached.
  ASSERT_TRUE(rack_->RevokeFromDomain(session, va_, kPageSize).ok());
  // The cached copy must not serve the revoked domain.
  auto r = Go(session, va_, AccessType::kRead, t);
  EXPECT_EQ(r.status.code(), ErrorCode::kPermissionDenied);
}

TEST_F(RackProtectionTest, DomainTagsDoNotBlockPermittedSharing) {
  const ProtDomainId session = 888;
  ASSERT_TRUE(rack_->GrantToDomain(pid_, session, va_, kPageSize, PermClass::kReadOnly).ok());
  // Owner domain faults the page in; the session reads the same cached page (allowed by the
  // protection table, so the hit goes through despite the differing domain tag).
  SimTime t = Go(pdid_, va_, AccessType::kRead, 0).completion;
  auto r = Go(session, va_, AccessType::kRead, t);
  EXPECT_TRUE(r.status.ok());
  EXPECT_TRUE(r.local_hit);
}

TEST_F(RackProtectionTest, ForeignDomainCannotRideCachedPages) {
  SimTime t = Go(pdid_, va_, AccessType::kWrite, 0).completion;  // Cached writable.
  const ProtDomainId intruder = 999;  // No grants at all.
  auto r = Go(intruder, va_, AccessType::kRead, t);
  EXPECT_EQ(r.status.code(), ErrorCode::kPermissionDenied);
}

TEST(RackCoupledFetch, WholeRegionFetchFillsRegion) {
  RackConfig cfg = Config();
  cfg.fetch_whole_region = true;
  cfg.splitting.enabled = false;
  cfg.splitting.initial_region_size = 64 * 1024;  // 16 pages.
  Rack rack(cfg);
  const ProcessId pid = *rack.Exec("coupled");
  const ProtDomainId pdid = *rack.controller().PdidOf(pid);
  const ThreadId tid = rack.SpawnThread(pid, 0)->tid;
  const VirtAddr va = *rack.Mmap(pid, 1 << 20, PermClass::kReadWrite);

  auto r = rack.Access(AccessRequest{tid, 0, pdid, va, AccessType::kRead, 0});
  ASSERT_TRUE(r.status.ok());
  // All 16 pages of the region are now resident — the coupled design's bandwidth cost.
  EXPECT_EQ(rack.compute_blade(0).cache().CountRange(PageNumber(va), PageNumber(va) + 16),
            16u);
  EXPECT_GE(rack.memory_blade(0).reads(), 16u);
  // And the next page hit is local.
  auto r2 = rack.Access(AccessRequest{tid, 0, pdid, va + 5 * kPageSize, AccessType::kRead,
                                      r.completion});
  EXPECT_TRUE(r2.local_hit);
}

TEST(RackCoupledFetch, DecoupledFetchesSinglePage) {
  RackConfig cfg = Config();
  cfg.fetch_whole_region = false;
  cfg.splitting.enabled = false;
  cfg.splitting.initial_region_size = 64 * 1024;
  Rack rack(cfg);
  const ProcessId pid = *rack.Exec("decoupled");
  const ProtDomainId pdid = *rack.controller().PdidOf(pid);
  const ThreadId tid = rack.SpawnThread(pid, 0)->tid;
  const VirtAddr va = *rack.Mmap(pid, 1 << 20, PermClass::kReadWrite);

  auto r = rack.Access(AccessRequest{tid, 0, pdid, va, AccessType::kRead, 0});
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(rack.compute_blade(0).cache().CountRange(PageNumber(va), PageNumber(va) + 16),
            1u);
}

}  // namespace
}  // namespace mind
