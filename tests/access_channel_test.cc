// Conformance suite for the AccessChannel contract (src/core/access_channel.h), run
// against every compared system: MIND (TSO and PSO), GAM and FastSwap.
//
// Part 1 — engine-level conformance: channel-driven replay at 1/2/4/8 shards must be
// bit-identical (counters, every histogram bucket, makespan, throughput) to the per-op
// reference path that issues one virtual MemorySystem::Access per op in exact global
// order. This is the contract's whole point: channels are an execution strategy, never a
// semantic.
//
// Part 2 — channel-level contract: per-2MB-region validity stamps. A run submitted over
// private regions must survive an invalidation wave that hits a *different* (shared)
// region of the same blade, and must die when the wave lands inside one of its own
// stamped regions.
#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/fastswap.h"
#include "src/baselines/gam.h"
#include "src/baselines/mind_system.h"
#include "src/common/rng.h"
#include "src/core/access_channel.h"
#include "src/core/channel_group.h"
#include "src/workload/generators.h"
#include "src/workload/replay.h"

namespace mind {
namespace {

void ExpectReportsIdentical(const ReplayReport& want, const ReplayReport& got) {
  EXPECT_EQ(want.makespan, got.makespan);
  EXPECT_EQ(want.total_ops, got.total_ops);
  EXPECT_EQ(want.counters.total_accesses, got.counters.total_accesses);
  EXPECT_EQ(want.counters.local_hits, got.counters.local_hits);
  EXPECT_EQ(want.counters.remote_accesses, got.counters.remote_accesses);
  EXPECT_EQ(want.counters.invalidations, got.counters.invalidations);
  EXPECT_EQ(want.counters.pages_flushed, got.counters.pages_flushed);
  EXPECT_EQ(want.counters.false_invalidations, got.counters.false_invalidations);
  EXPECT_EQ(want.counters.breakdown_sums.fault, got.counters.breakdown_sums.fault);
  EXPECT_EQ(want.counters.breakdown_sums.network, got.counters.breakdown_sums.network);
  EXPECT_EQ(want.counters.breakdown_sums.inv_queue, got.counters.breakdown_sums.inv_queue);
  EXPECT_EQ(want.counters.breakdown_sums.inv_tlb, got.counters.breakdown_sums.inv_tlb);
  EXPECT_TRUE(want.latency_histogram == got.latency_histogram);
  EXPECT_DOUBLE_EQ(want.avg_latency_us, got.avg_latency_us);
  EXPECT_DOUBLE_EQ(want.throughput_mops, got.throughput_mops);
}

// --- Part 1: engine-level conformance across systems -------------------------

struct ConformanceCase {
  std::string name;
  std::function<std::unique_ptr<MemorySystem>()> make_system;
  WorkloadSpec spec;
  // The channel fast path must actually engage under sharded replay (not merely match by
  // draining everything).
  bool expect_parallel_hits = true;
  // With use_channel_groups on, per-blade group commits must actually engage (the case
  // has >= 2 threads sharing a blade and a hit-capable working set).
  bool expect_grouped_ops = false;
};

RackConfig ConformanceRackConfig() {
  RackConfig c;
  c.num_compute_blades = 4;
  c.num_memory_blades = 4;
  c.memory_blade_capacity = 2ull << 30;
  c.compute_cache_bytes = 8ull << 20;  // Small cache: real LRU evictions during replay.
  c.directory_slots = 2048;            // Small directory: capacity evictions + merges.
  c.splitting.epoch_length = 2 * kMillisecond;
  return c;
}

GamConfig ConformanceGamConfig() {
  GamConfig c;
  c.num_compute_blades = 4;
  c.num_memory_blades = 4;
  c.compute_cache_bytes = 8ull << 20;
  return c;
}

WorkloadSpec CoherenceSpec(int blades, int threads_per_blade) {
  WorkloadSpec spec = MemcachedASpec(blades, threads_per_blade,
                                     /*accesses_per_thread=*/3000);
  spec.shared_pages = 4096;
  return spec;
}

std::vector<ConformanceCase> ConformanceCases() {
  std::vector<ConformanceCase> cases;
  cases.push_back(ConformanceCase{
      "MindTso",
      [] { return std::make_unique<MindSystem>(ConformanceRackConfig()); },
      CoherenceSpec(4, 2), /*expect_parallel_hits=*/true, /*expect_grouped_ops=*/true});
  {
    RackConfig pso = ConformanceRackConfig();
    pso.consistency = ConsistencyModel::kPso;
    cases.push_back(ConformanceCase{
        "MindPso", [pso] { return std::make_unique<MindSystem>(pso); },
        CoherenceSpec(4, 2), /*expect_parallel_hits=*/true, /*expect_grouped_ops=*/true});
  }
  // GAM with one thread per blade and cache-resident per-blade working sets: the
  // channel's simulated lock queue is exact at Submit (latency_final), hit runs are
  // uniform, and sparse shared writes fire real cross-blade invalidations.
  {
    WorkloadSpec spec;
    spec.name = "gam-blade-resident";
    spec.num_blades = 4;
    spec.threads_per_blade = 1;
    spec.private_pages_per_thread = 1024;  // Fits the 2048-frame conformance cache.
    spec.private_pattern = Pattern::kSequential;
    spec.private_write_fraction = 0.5;
    spec.shared_pages = 512;
    spec.shared_access_fraction = 0.05;
    spec.shared_write_fraction = 0.2;
    spec.accesses_per_thread = 5000;
    cases.push_back(ConformanceCase{
        "GamSoleThreadBlades",
        [] { return std::make_unique<GamSystem>(ConformanceGamConfig()); }, spec});
  }
  // GAM streaming far past the cache (TF shape on an 8 MB cache): nearly every op is a
  // miss, so this pins down bit-identity when the adaptive drain carries ~the whole
  // trace. Channel engagement is not asserted — there are no runs worth batching.
  cases.push_back(ConformanceCase{
      "GamStreamingMisses",
      [] { return std::make_unique<GamSystem>(ConformanceGamConfig()); },
      TfSpec(4, /*threads_per_blade=*/1, /*accesses_per_thread=*/4000),
      /*expect_parallel_hits=*/false});
  // GAM with intra-blade contention: submit-time latencies are lower bounds; grouped
  // commits finalize them exactly inside the merged batch (and the per-thread fallback
  // op by op against the live lock queue).
  cases.push_back(ConformanceCase{
      "GamContendedBlades",
      [] { return std::make_unique<GamSystem>(ConformanceGamConfig()); },
      CoherenceSpec(4, 2), /*expect_parallel_hits=*/true, /*expect_grouped_ops=*/true});
  {
    // FastSwap, cache-resident: two threads share the swap cache, hits dominate after
    // warmup, and the same-blade (clock, thread) merge interleaves their runs.
    FastSwapConfig fs;
    fs.num_memory_blades = 4;
    fs.compute_cache_bytes = 4ull << 20;  // 1024 frames.
    WorkloadSpec spec;
    spec.name = "fastswap-resident";
    spec.num_blades = 1;
    spec.threads_per_blade = 2;
    spec.private_pages_per_thread = 400;
    spec.private_pattern = Pattern::kUniform;
    spec.private_write_fraction = 0.5;
    spec.accesses_per_thread = 5000;
    cases.push_back(ConformanceCase{
        "FastSwapResident", [fs] { return std::make_unique<FastSwapSystem>(fs); }, spec,
        /*expect_parallel_hits=*/true, /*expect_grouped_ops=*/true});
    // FastSwap, thrashing: working set ~1.5x the cache, so faults, LRU evictions and
    // dirty write-backs dominate — identity only, engagement depends on the drain policy.
    WorkloadSpec thrash = spec;
    thrash.name = "fastswap-thrash";
    thrash.private_pages_per_thread = 800;
    cases.push_back(ConformanceCase{
        "FastSwapThrashing", [fs] { return std::make_unique<FastSwapSystem>(fs); },
        thrash, /*expect_parallel_hits=*/false});
  }
  return cases;
}

class AccessChannelConformance : public ::testing::TestWithParam<ConformanceCase> {};

TEST_P(AccessChannelConformance, BitIdenticalToPerOpReference) {
  const ConformanceCase& c = GetParam();
  const WorkloadTraces traces = GenerateTraces(c.spec);

  auto ref_sys = c.make_system();
  ReplayOptions ref_opts;
  ref_opts.use_channels = false;
  ReplayEngine ref(ref_sys.get(), &traces, ref_opts);
  ASSERT_TRUE(ref.Setup().ok());
  const ReplayReport want = ref.Run();
  ASSERT_GT(want.total_ops, 0u);

  // The full execution-strategy matrix: per-thread channel commits and per-blade group
  // commits, at every shard count, must all be bit-identical to the per-op reference.
  for (const bool groups : {false, true}) {
    for (const int shards : {1, 2, 4, 8}) {
      SCOPED_TRACE(::testing::Message()
                   << (groups ? "groups" : "plain") << "/" << shards << "shards");
      auto sys = c.make_system();
      ReplayOptions opts;
      opts.shards = shards;
      opts.use_channel_groups = groups;
      ReplayEngine engine(sys.get(), &traces, opts);
      ASSERT_TRUE(engine.Setup().ok());
      const ReplayReport got = engine.Run();
      ExpectReportsIdentical(want, got);
      uint64_t parallel = 0;
      uint64_t grouped = 0;
      for (const ShardReport& sr : engine.shard_reports()) {
        parallel += sr.parallel_hits;
        grouped += sr.grouped_ops;
      }
      if (c.expect_parallel_hits) {
        EXPECT_GT(parallel, 0u) << "channel fast path never engaged";
      }
      if (groups && c.expect_grouped_ops) {
        EXPECT_GT(grouped, 0u) << "per-blade group commits never engaged";
      }
      if (!groups) {
        EXPECT_EQ(grouped, 0u) << "groups committed ops while disabled";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, AccessChannelConformance,
                         ::testing::ValuesIn(ConformanceCases()),
                         [](const ::testing::TestParamInfo<ConformanceCase>& info) {
                           return info.param.name;
                         });

// --- Part 2: per-region validity stamps --------------------------------------

// MIND: a run submitted over a private 2MB region of blade 0 survives a cross-blade
// invalidation wave that strips a *shared* region of blade 0, and dies only when a wave
// lands inside the run's own region. (Directory entries start at 16 KB, far below the
// 2 MB stamp granularity, so the shared wave cannot leak into the private region.)
TEST(AccessChannelRegionStamps, MindPrivateRunSurvivesSharedWave) {
  RackConfig cfg;
  cfg.num_compute_blades = 2;
  cfg.num_memory_blades = 2;
  MindSystem sys(cfg);
  const VirtAddr base = *sys.Alloc(8ull << 20);  // 2048 pages: spans four 2MB regions.
  const ThreadId tid_a = *sys.RegisterThread(0);
  const ThreadId tid_b = *sys.RegisterThread(1);

  SimTime t = 0;
  // Blade 0 caches private pages 0..7 (region 0) writable...
  for (uint64_t p = 0; p < 8; ++p) {
    const AccessResult r = sys.Access(tid_a, 0, base + p * kPageSize, AccessType::kWrite, t);
    ASSERT_TRUE(r.status.ok());
    t = r.completion + 1;
  }
  // ...and the shared page 1024 (region 2) read-only.
  const VirtAddr shared = base + 1024 * kPageSize;
  {
    const AccessResult r = sys.Access(tid_a, 0, shared, AccessType::kRead, t);
    ASSERT_TRUE(r.status.ok());
    t = r.completion + 1;
  }

  auto channel = sys.OpenChannel(tid_a, 0);
  ASSERT_NE(channel, nullptr);
  std::vector<LocalOp> ops;
  for (uint64_t p = 0; p < 8; ++p) {
    ops.push_back(LocalOp{base + p * kPageSize, AccessType::kRead});
  }
  std::vector<Completion> comps(ops.size());
  const SimTime submit_clock = t;
  const SubmitResult run = channel->Submit(ops.data(), ops.size(), submit_clock,
                                           /*think=*/100, comps.data());
  ASSERT_EQ(run.accepted, ops.size());
  EXPECT_TRUE(run.latency_final);
  EXPECT_GT(run.uniform_latency, 0u);
  EXPECT_TRUE(channel->RunValid());

  // Cross-blade write to the shared page: the invalidation wave strips blade 0's copy in
  // region 2. The run's stamp covers only region 0 — it must survive.
  const uint64_t inv_before = sys.counters().invalidations;
  {
    const AccessResult r = sys.Access(tid_b, 1, shared, AccessType::kWrite, t);
    ASSERT_TRUE(r.status.ok());
    t = r.completion + 1;
  }
  ASSERT_GT(sys.counters().invalidations, inv_before);  // The wave really hit blade 0.
  EXPECT_TRUE(channel->RunValid());

  // The surviving run commits, and the committed hits are real: a serial re-access of a
  // committed page still hits blade-locally.
  channel->Commit(comps.data(), comps.size(), submit_clock);
  {
    const AccessResult r = sys.Access(tid_a, 0, base, AccessType::kRead, t);
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.local_hit);
    t = r.completion + 1;
  }

  // A wave inside the run's own region kills it.
  {
    const AccessResult r = sys.Access(tid_b, 1, base + 3 * kPageSize, AccessType::kWrite, t);
    ASSERT_TRUE(r.status.ok());
  }
  EXPECT_FALSE(channel->RunValid());
}

// Same shape for GAM, whose page-granular software directory makes the wave surgical.
TEST(AccessChannelRegionStamps, GamPrivateRunSurvivesSharedWave) {
  GamConfig cfg;
  cfg.num_compute_blades = 2;
  cfg.num_memory_blades = 2;
  GamSystem sys(cfg);
  const VirtAddr base = *sys.Alloc(16ull << 20);
  const ThreadId tid_a = *sys.RegisterThread(0);
  const ThreadId tid_b = *sys.RegisterThread(1);

  SimTime t = 0;
  for (uint64_t p = 0; p < 8; ++p) {
    const AccessResult r = sys.Access(tid_a, 0, base + p * kPageSize, AccessType::kWrite, t);
    ASSERT_TRUE(r.status.ok());
    t = r.completion + 1;
  }
  const VirtAddr shared = base + 2048 * kPageSize;  // Region 4: far from the run.
  {
    const AccessResult r = sys.Access(tid_a, 0, shared, AccessType::kRead, t);
    ASSERT_TRUE(r.status.ok());
    t = r.completion + 1;
  }

  auto channel = sys.OpenChannel(tid_a, 0);
  ASSERT_NE(channel, nullptr);
  std::vector<LocalOp> ops;
  for (uint64_t p = 0; p < 8; ++p) {
    ops.push_back(LocalOp{base + p * kPageSize, AccessType::kRead});
  }
  std::vector<Completion> comps(ops.size());
  const SubmitResult run =
      channel->Submit(ops.data(), ops.size(), t, /*think=*/100, comps.data());
  ASSERT_EQ(run.accepted, ops.size());
  EXPECT_TRUE(run.latency_final);  // Blade 0 has a single registered thread.
  EXPECT_GT(run.uniform_latency, 0u);
  EXPECT_TRUE(channel->RunValid());

  // B steals the shared page: GAM invalidates blade 0's copy of that page only.
  {
    const AccessResult r = sys.Access(tid_b, 1, shared, AccessType::kWrite, t);
    ASSERT_TRUE(r.status.ok());
    t = r.completion + 1;
  }
  EXPECT_GT(sys.counters().invalidations, 0u);
  EXPECT_TRUE(channel->RunValid());

  // B steals a page inside the run's region: the run dies.
  {
    const AccessResult r = sys.Access(tid_b, 1, base + 3 * kPageSize, AccessType::kWrite, t);
    ASSERT_TRUE(r.status.ok());
  }
  EXPECT_FALSE(channel->RunValid());
}

// --- Part 3: per-blade channel groups ----------------------------------------

// GAM under intra-blade contention: per-thread Submit can only lower-bound hit latencies
// (latency_final = false), but one group commit replays the merged (clock, thread) lock
// queue and writes *exact* latencies into the completions — identical to serial per-op
// Access over the same interleaving — in a single batched call that advances the blade's
// FIFO lock once.
TEST(ChannelGroup, GamContendedBladeCommitsExactLatencies) {
  GamConfig cfg;
  cfg.num_compute_blades = 2;
  cfg.num_memory_blades = 2;
  GamSystem grouped(cfg);
  GamSystem serial(cfg);

  constexpr uint64_t kPages = 8;
  constexpr SimTime kThink = 50;
  struct Twin {
    GamSystem* sys;
    VirtAddr base = 0;
    ThreadId a = 0;
    ThreadId b = 0;
    SimTime warm_end = 0;
  };
  Twin twins[2] = {{&grouped}, {&serial}};
  for (Twin& tw : twins) {
    tw.base = *tw.sys->Alloc(1ull << 20);
    tw.a = *tw.sys->RegisterThread(0);
    tw.b = *tw.sys->RegisterThread(0);
    // Identical warm schedule on both systems: a writes pages 0..7, b pages 8..15.
    SimTime t = 0;
    for (uint64_t p = 0; p < 2 * kPages; ++p) {
      const ThreadId tid = p < kPages ? tw.a : tw.b;
      const AccessResult r =
          tw.sys->Access(tid, 0, tw.base + p * kPageSize, AccessType::kWrite, t);
      ASSERT_TRUE(r.status.ok());
      t = r.completion + 1;
    }
    tw.warm_end = t;
  }
  ASSERT_EQ(twins[0].warm_end, twins[1].warm_end);
  const SimTime t0 = twins[0].warm_end + 1000;
  const SimTime start_clock[2] = {t0, t0 + 30};

  // The replayed interleave: each thread touches its own pages with a read/write mix
  // (reads exercise the PSO barrier against the warm writes; everything is a cache hit).
  auto op_at = [](const Twin& tw, int thread, uint64_t i) {
    const uint64_t page = thread == 0 ? i : kPages + i;
    return LocalOp{tw.base + page * kPageSize,
                   i % 2 == 0 ? AccessType::kRead : AccessType::kWrite};
  };

  // Serial reference: per-op Access in (clock, thread) order against the twin system.
  std::vector<SimTime> want_latency[2];
  SimTime clock[2] = {start_clock[0], start_clock[1]};
  uint64_t next[2] = {0, 0};
  while (next[0] < kPages || next[1] < kPages) {
    int pick;
    if (next[0] >= kPages) {
      pick = 1;
    } else if (next[1] >= kPages) {
      pick = 0;
    } else {
      pick = clock[1] < clock[0] ? 1 : 0;  // Tie-break: lower thread index.
    }
    const LocalOp op = op_at(twins[1], pick, next[pick]);
    const AccessResult r = twins[1].sys->Access(pick == 0 ? twins[1].a : twins[1].b, 0,
                                                op.va, op.type, clock[pick]);
    ASSERT_TRUE(r.local_hit);
    want_latency[pick].push_back(r.latency);
    clock[pick] += r.latency + kThink;
    ++next[pick];
  }

  // Group path: submit both runs, then one CommitMerged for the whole blade.
  auto ch_a = grouped.OpenChannel(twins[0].a, 0);
  auto ch_b = grouped.OpenChannel(twins[0].b, 0);
  ASSERT_NE(ch_a, nullptr);
  ASSERT_NE(ch_b, nullptr);
  std::vector<LocalOp> ops[2];
  std::vector<Completion> comps[2];
  AccessChannel* channels[2] = {ch_a.get(), ch_b.get()};
  SubmitResult runs[2];
  for (int th = 0; th < 2; ++th) {
    for (uint64_t i = 0; i < kPages; ++i) {
      ops[th].push_back(op_at(twins[0], th, i));
    }
    comps[th].resize(kPages);
    runs[th] = channels[th]->Submit(ops[th].data(), kPages, start_clock[th], kThink,
                                    comps[th].data());
    ASSERT_EQ(runs[th].accepted, kPages);
    EXPECT_FALSE(runs[th].latency_final);  // Two registered threads share the blade.
    EXPECT_EQ(runs[th].uniform_latency, 0u);
  }
  auto group = grouped.OpenChannelGroup(0);
  ASSERT_NE(group, nullptr);
  GroupLane lanes[2];
  for (int th = 0; th < 2; ++th) {
    lanes[th].member = group->Add(channels[th]);
    lanes[th].thread_index = static_cast<size_t>(th);
    lanes[th].clock = start_clock[th];
    lanes[th].uniform_latency = runs[th].uniform_latency;
    lanes[th].comps = comps[th].data();
    lanes[th].count = kPages;
  }
  EXPECT_EQ(group->ValidMask() & 3u, 3u);
  Histogram hist;
  const uint64_t committed = group->CommitMerged(
      lanes, 2, std::numeric_limits<SimTime>::max(), kThink, hist);
  EXPECT_EQ(committed, 2 * kPages);

  for (int th = 0; th < 2; ++th) {
    SCOPED_TRACE(th);
    ASSERT_EQ(lanes[th].committed, kPages);
    for (uint64_t i = 0; i < kPages; ++i) {
      // Exact, not commit-finalized: the batched group latencies equal serial per-op
      // replay of the identical interleaving.
      EXPECT_EQ(comps[th][i].latency, want_latency[th][i]) << "op " << i;
    }
    EXPECT_EQ(lanes[th].end_clock, clock[th]);
  }

  // The blade's lock advanced to the same horizon on both systems: a probe access at the
  // merged end time must queue identically.
  const SimTime probe_at = std::max(clock[0], clock[1]);
  const AccessResult pg =
      grouped.Access(twins[0].a, 0, twins[0].base, AccessType::kRead, probe_at);
  const AccessResult ps =
      serial.Access(twins[1].a, 0, twins[1].base, AccessType::kRead, probe_at);
  EXPECT_EQ(pg.latency, ps.latency);
  EXPECT_EQ(pg.completion, ps.completion);
}

// Group commits under real worker threads (the TSan-exercised path): bit-identity and
// group engagement must both hold when shards run their blades' merges concurrently.
TEST(ChannelGroup, ForcedWorkerThreadsCommitGroups) {
  const WorkloadTraces traces = GenerateTraces(CoherenceSpec(4, 2));
  auto ref_sys = std::make_unique<MindSystem>(ConformanceRackConfig());
  ReplayOptions ref_opts;
  ref_opts.use_channels = false;
  ReplayEngine ref(ref_sys.get(), &traces, ref_opts);
  ASSERT_TRUE(ref.Setup().ok());
  const ReplayReport want = ref.Run();

  auto sys = std::make_unique<MindSystem>(ConformanceRackConfig());
  ReplayOptions opts;
  opts.shards = 4;
  opts.force_threads = true;
  ReplayEngine engine(sys.get(), &traces, opts);
  ASSERT_TRUE(engine.Setup().ok());
  const ReplayReport got = engine.Run();
  ExpectReportsIdentical(want, got);
  uint64_t grouped = 0;
  for (const ShardReport& sr : engine.shard_reports()) {
    grouped += sr.grouped_ops;
  }
  EXPECT_GT(grouped, 0u);
}

// ValidMask delivers per-member verdicts from one validation pass per blade: a wave into
// one member's stamped region clears only that member's bit.
TEST(ChannelGroup, MindValidMaskIsPerMember) {
  RackConfig cfg;
  cfg.num_compute_blades = 2;
  cfg.num_memory_blades = 2;
  MindSystem sys(cfg);
  const VirtAddr base = *sys.Alloc(8ull << 20);  // 2048 pages: four 2 MB regions.
  const ThreadId tid_a = *sys.RegisterThread(0);
  const ThreadId tid_b = *sys.RegisterThread(0);
  const ThreadId tid_c = *sys.RegisterThread(1);

  SimTime t = 0;
  auto warm = [&](ThreadId tid, uint64_t first_page) {
    for (uint64_t p = first_page; p < first_page + 8; ++p) {
      const AccessResult r =
          sys.Access(tid, 0, base + p * kPageSize, AccessType::kWrite, t);
      ASSERT_TRUE(r.status.ok());
      t = r.completion + 1;
    }
  };
  warm(tid_a, 0);      // Region 0.
  warm(tid_b, 1024);   // Region 2.

  auto ch_a = sys.OpenChannel(tid_a, 0);
  auto ch_b = sys.OpenChannel(tid_b, 0);
  auto submit = [&](AccessChannel* ch, uint64_t first_page, std::vector<Completion>* out) {
    std::vector<LocalOp> ops;
    for (uint64_t p = first_page; p < first_page + 8; ++p) {
      ops.push_back(LocalOp{base + p * kPageSize, AccessType::kRead});
    }
    out->resize(ops.size());
    const SubmitResult run = ch->Submit(ops.data(), ops.size(), t, 100, out->data());
    ASSERT_EQ(run.accepted, ops.size());
  };
  std::vector<Completion> comps_a, comps_b;
  submit(ch_a.get(), 0, &comps_a);
  submit(ch_b.get(), 1024, &comps_b);

  auto group = sys.OpenChannelGroup(0);
  ASSERT_NE(group, nullptr);
  ASSERT_EQ(group->Add(ch_a.get()), 0u);
  ASSERT_EQ(group->Add(ch_b.get()), 1u);
  EXPECT_EQ(group->ValidMask() & 3u, 3u);

  // A cross-blade write into member a's region strips blade 0's copy there: only bit 0
  // drops.
  const AccessResult r =
      sys.Access(tid_c, 1, base + 3 * kPageSize, AccessType::kWrite, t);
  ASSERT_TRUE(r.status.ok());
  const uint64_t mask = group->ValidMask();
  EXPECT_EQ(mask & 1u, 0u);
  EXPECT_EQ(mask & 2u, 2u);
}

// GroupMergeCommit dispatches its per-op argmin to a loser tree above
// kGroupMergeLinearScanMax lanes. The tree must replay exactly the linear scan's
// (end_clock, thread_index) merge order — horizon-dead and exhausted lanes skipped — so
// committing the same synthetic lane set at a lane count on each side of the crossover
// yields identical per-lane out-fields and identical merged order.
TEST(ChannelGroup, LoserTreeMatchesLinearScanOrder) {
  constexpr size_t kLanes = 32;  // > kGroupMergeLinearScanMax: the tree path.
  constexpr size_t kOps = 24;
  Rng rng(17);
  std::vector<std::vector<Completion>> comps(kLanes, std::vector<Completion>(kOps));
  std::vector<GroupLane> lanes(kLanes);
  for (size_t i = 0; i < kLanes; ++i) {
    for (size_t j = 0; j < kOps; ++j) {
      comps[i][j].latency = 50 + rng.NextBelow(100);
    }
    lanes[i].member = i;
    lanes[i].thread_index = i;
    lanes[i].clock = rng.NextBelow(64);
    lanes[i].uniform_latency = 0;
    lanes[i].comps = comps[i].data();
    lanes[i].count = kOps;
  }
  const SimTime horizon = 1500;  // Some lanes die at the horizon mid-run.
  const SimTime think = 10;
  auto latency_of = [](const GroupLane& ln, size_t idx) { return ln.comps[idx].latency; };

  // Reference: a hand-rolled linear argmin scan over all 32 lanes (GroupMergeCommit
  // itself would dispatch to the tree at this count), recording the merged order.
  std::vector<GroupLane> ref = lanes;
  std::vector<size_t> ref_order;
  for (size_t i = 0; i < kLanes; ++i) {
    ref[i].committed = 0;
    ref[i].end_clock = ref[i].clock;
    ref[i].last_start = ref[i].clock;
    ref[i].latency_sum = 0;
  }
  for (;;) {
    GroupLane* best = nullptr;
    for (size_t i = 0; i < kLanes; ++i) {
      GroupLane& ln = ref[i];
      if (ln.committed >= ln.count || ln.end_clock >= horizon) {
        continue;
      }
      if (best == nullptr || ln.end_clock < best->end_clock ||
          (ln.end_clock == best->end_clock && ln.thread_index < best->thread_index)) {
        best = &ln;
      }
    }
    if (best == nullptr) {
      break;
    }
    ref_order.push_back(best->thread_index);
    const SimTime latency = latency_of(*best, best->committed);
    best->last_start = best->end_clock;
    best->latency_sum += latency;
    best->end_clock += latency + think;
    ++best->committed;
  }
  ASSERT_GT(ref_order.size(), 0u);
  ASSERT_LT(ref_order.size(), kLanes * kOps);  // The horizon really cut lanes short.

  // Candidate: GroupMergeCommit over all 32 lanes — the loser-tree path.
  std::vector<size_t> got_order;
  Histogram got_hist;
  const uint64_t got_total = GroupMergeCommit(
      lanes.data(), kLanes, horizon, think, got_hist, latency_of,
      [&](GroupLane& ln, size_t) { got_order.push_back(ln.thread_index); });
  EXPECT_EQ(got_total, ref_order.size());
  EXPECT_EQ(got_order, ref_order);
  for (size_t i = 0; i < kLanes; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(lanes[i].committed, ref[i].committed);
    EXPECT_EQ(lanes[i].end_clock, ref[i].end_clock);
    EXPECT_EQ(lanes[i].last_start, ref[i].last_start);
    EXPECT_EQ(lanes[i].latency_sum, ref[i].latency_sum);
  }
}

}  // namespace
}  // namespace mind
