// Unit tests for the TCAM model: LPM semantics, range alignment, capacity accounting.
#include <gtest/gtest.h>

#include "src/dataplane/tcam.h"

namespace mind {
namespace {

TEST(TcamCapacity, ReserveAndRelease) {
  TcamCapacity cap(2);
  EXPECT_TRUE(cap.TryReserve());
  EXPECT_TRUE(cap.TryReserve());
  EXPECT_FALSE(cap.TryReserve());
  EXPECT_EQ(cap.used(), 2u);
  EXPECT_EQ(cap.high_water(), 2u);
  cap.Release();
  EXPECT_TRUE(cap.TryReserve());
  EXPECT_EQ(cap.high_water(), 2u);
  EXPECT_DOUBLE_EQ(cap.utilization(), 1.0);
}

TEST(Tcam, ExactMatch) {
  Tcam<int> t(nullptr);
  ASSERT_TRUE(t.InsertRange(0x1000, 0, 7).ok());  // 1-byte "range" = exact key.
  EXPECT_EQ(t.Lookup(0x1000).value(), 7);
  EXPECT_FALSE(t.Lookup(0x1001).has_value());
}

TEST(Tcam, RangeMatch) {
  Tcam<int> t(nullptr);
  ASSERT_TRUE(t.InsertRange(0x2000, 12, 9).ok());  // [0x2000, 0x3000).
  EXPECT_EQ(t.Lookup(0x2000).value(), 9);
  EXPECT_EQ(t.Lookup(0x2fff).value(), 9);
  EXPECT_FALSE(t.Lookup(0x3000).has_value());
  EXPECT_FALSE(t.Lookup(0x1fff).has_value());
}

TEST(Tcam, LongestPrefixWins) {
  Tcam<int> t(nullptr);
  ASSERT_TRUE(t.InsertRange(0x0, 20, 1).ok());     // [0, 1M): value 1.
  ASSERT_TRUE(t.InsertRange(0x4000, 12, 2).ok());  // [16K, 20K): value 2 — more specific.
  EXPECT_EQ(t.Lookup(0x4000).value(), 2);
  EXPECT_EQ(t.Lookup(0x4abc).value(), 2);
  EXPECT_EQ(t.Lookup(0x5000).value(), 1);  // Outside the inner range.
  EXPECT_EQ(t.Lookup(0x0).value(), 1);
}

TEST(Tcam, RejectsUnalignedRange) {
  Tcam<int> t(nullptr);
  EXPECT_EQ(t.InsertRange(0x1001, 12, 5).code(), ErrorCode::kInvalidArgument);
}

TEST(Tcam, OverwriteInPlaceKeepsCapacity) {
  TcamCapacity cap(1);
  Tcam<int> t(&cap);
  ASSERT_TRUE(t.InsertRange(0x1000, 12, 1).ok());
  ASSERT_TRUE(t.InsertRange(0x1000, 12, 2).ok());  // Same range: overwrite, no new slot.
  EXPECT_EQ(t.Lookup(0x1800).value(), 2);
  EXPECT_EQ(cap.used(), 1u);
}

TEST(Tcam, CapacityExhaustion) {
  TcamCapacity cap(1);
  Tcam<int> t(&cap);
  ASSERT_TRUE(t.InsertRange(0x1000, 12, 1).ok());
  EXPECT_EQ(t.InsertRange(0x2000, 12, 2).code(), ErrorCode::kResourceExhausted);
  ASSERT_TRUE(t.RemoveRange(0x1000, 12).ok());
  EXPECT_TRUE(t.InsertRange(0x2000, 12, 2).ok());
}

TEST(Tcam, RemoveMissing) {
  Tcam<int> t(nullptr);
  EXPECT_EQ(t.RemoveRange(0x1000, 12).code(), ErrorCode::kNotFound);
}

TEST(Tcam, ClearReleasesCapacity) {
  TcamCapacity cap(4);
  Tcam<int> t(&cap);
  ASSERT_TRUE(t.InsertRange(0x1000, 12, 1).ok());
  ASSERT_TRUE(t.InsertRange(0x2000, 12, 2).ok());
  EXPECT_EQ(cap.used(), 2u);
  t.Clear();
  EXPECT_EQ(cap.used(), 0u);
  EXPECT_EQ(t.entries(), 0u);
  EXPECT_FALSE(t.Lookup(0x1000).has_value());
}

// Regression for the active-prefix fast path: overwriting an entry in place via
// InsertRange must leave the prefix-length bitmask (and thus LPM ordering) intact, both
// for the overwritten nested range and for its enclosing outlier ranges. A stale or
// cleared bitmask bit would make Lookup skip the longest prefix and return the broader
// entry — silently wrong translations for migrated pages.
TEST(Tcam, OverwriteInPlacePreservesLongestPrefixWithNestedRanges) {
  TcamCapacity cap(8);
  Tcam<int> t(&cap);
  // Three nested layers: 1 MB outer, 64 KB middle, 4 KB inner outlier.
  ASSERT_TRUE(t.InsertRange(0x100000, 20, 10).ok());  // [1M, 2M).
  ASSERT_TRUE(t.InsertRange(0x110000, 16, 20).ok());  // [1M+64K, 1M+128K).
  ASSERT_TRUE(t.InsertRange(0x111000, 12, 30).ok());  // One page inside the middle range.
  ASSERT_EQ(cap.used(), 3u);

  // Overwrite every layer in place, middle first, then inner, then outer.
  ASSERT_TRUE(t.InsertRange(0x110000, 16, 21).ok());
  ASSERT_TRUE(t.InsertRange(0x111000, 12, 31).ok());
  ASSERT_TRUE(t.InsertRange(0x100000, 20, 11).ok());
  EXPECT_EQ(cap.used(), 3u) << "in-place overwrite must not consume capacity";
  EXPECT_EQ(t.entries(), 3u);

  // Longest-prefix order must still hold at every nesting depth.
  EXPECT_EQ(t.Lookup(0x111800).value(), 31);  // Inner page wins over middle and outer.
  EXPECT_EQ(t.Lookup(0x110800).value(), 21);  // Middle wins over outer.
  EXPECT_EQ(t.Lookup(0x112000).value(), 21);  // Past the inner page: middle again.
  EXPECT_EQ(t.Lookup(0x100800).value(), 11);  // Outside middle: outer.
  EXPECT_FALSE(t.Lookup(0x200000).has_value());

  // Removing the overwritten inner entry must fall back to the middle range — and clear
  // its prefix class so the bit-scan no longer probes an empty table.
  ASSERT_TRUE(t.RemoveRange(0x111000, 12).ok());
  EXPECT_EQ(t.Lookup(0x111800).value(), 21);
  ASSERT_TRUE(t.RemoveRange(0x110000, 16).ok());
  EXPECT_EQ(t.Lookup(0x111800).value(), 11);
}

TEST(Tcam, FullAddressSpaceEntry) {
  Tcam<int> t(nullptr);
  ASSERT_TRUE(t.InsertRange(0, 63, 42).ok());  // Half the 64-bit space.
  EXPECT_EQ(t.Lookup(0x7fff'ffff'ffff'ffffull).value(), 42);
  EXPECT_FALSE(t.Lookup(0x8000'0000'0000'0000ull).has_value());
}

}  // namespace
}  // namespace mind
