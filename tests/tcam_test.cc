// Unit tests for the TCAM model: LPM semantics, range alignment, capacity accounting.
#include <gtest/gtest.h>

#include "src/dataplane/tcam.h"

namespace mind {
namespace {

TEST(TcamCapacity, ReserveAndRelease) {
  TcamCapacity cap(2);
  EXPECT_TRUE(cap.TryReserve());
  EXPECT_TRUE(cap.TryReserve());
  EXPECT_FALSE(cap.TryReserve());
  EXPECT_EQ(cap.used(), 2u);
  EXPECT_EQ(cap.high_water(), 2u);
  cap.Release();
  EXPECT_TRUE(cap.TryReserve());
  EXPECT_EQ(cap.high_water(), 2u);
  EXPECT_DOUBLE_EQ(cap.utilization(), 1.0);
}

TEST(Tcam, ExactMatch) {
  Tcam<int> t(nullptr);
  ASSERT_TRUE(t.InsertRange(0x1000, 0, 7).ok());  // 1-byte "range" = exact key.
  EXPECT_EQ(t.Lookup(0x1000).value(), 7);
  EXPECT_FALSE(t.Lookup(0x1001).has_value());
}

TEST(Tcam, RangeMatch) {
  Tcam<int> t(nullptr);
  ASSERT_TRUE(t.InsertRange(0x2000, 12, 9).ok());  // [0x2000, 0x3000).
  EXPECT_EQ(t.Lookup(0x2000).value(), 9);
  EXPECT_EQ(t.Lookup(0x2fff).value(), 9);
  EXPECT_FALSE(t.Lookup(0x3000).has_value());
  EXPECT_FALSE(t.Lookup(0x1fff).has_value());
}

TEST(Tcam, LongestPrefixWins) {
  Tcam<int> t(nullptr);
  ASSERT_TRUE(t.InsertRange(0x0, 20, 1).ok());     // [0, 1M): value 1.
  ASSERT_TRUE(t.InsertRange(0x4000, 12, 2).ok());  // [16K, 20K): value 2 — more specific.
  EXPECT_EQ(t.Lookup(0x4000).value(), 2);
  EXPECT_EQ(t.Lookup(0x4abc).value(), 2);
  EXPECT_EQ(t.Lookup(0x5000).value(), 1);  // Outside the inner range.
  EXPECT_EQ(t.Lookup(0x0).value(), 1);
}

TEST(Tcam, RejectsUnalignedRange) {
  Tcam<int> t(nullptr);
  EXPECT_EQ(t.InsertRange(0x1001, 12, 5).code(), ErrorCode::kInvalidArgument);
}

TEST(Tcam, OverwriteInPlaceKeepsCapacity) {
  TcamCapacity cap(1);
  Tcam<int> t(&cap);
  ASSERT_TRUE(t.InsertRange(0x1000, 12, 1).ok());
  ASSERT_TRUE(t.InsertRange(0x1000, 12, 2).ok());  // Same range: overwrite, no new slot.
  EXPECT_EQ(t.Lookup(0x1800).value(), 2);
  EXPECT_EQ(cap.used(), 1u);
}

TEST(Tcam, CapacityExhaustion) {
  TcamCapacity cap(1);
  Tcam<int> t(&cap);
  ASSERT_TRUE(t.InsertRange(0x1000, 12, 1).ok());
  EXPECT_EQ(t.InsertRange(0x2000, 12, 2).code(), ErrorCode::kResourceExhausted);
  ASSERT_TRUE(t.RemoveRange(0x1000, 12).ok());
  EXPECT_TRUE(t.InsertRange(0x2000, 12, 2).ok());
}

TEST(Tcam, RemoveMissing) {
  Tcam<int> t(nullptr);
  EXPECT_EQ(t.RemoveRange(0x1000, 12).code(), ErrorCode::kNotFound);
}

TEST(Tcam, ClearReleasesCapacity) {
  TcamCapacity cap(4);
  Tcam<int> t(&cap);
  ASSERT_TRUE(t.InsertRange(0x1000, 12, 1).ok());
  ASSERT_TRUE(t.InsertRange(0x2000, 12, 2).ok());
  EXPECT_EQ(cap.used(), 2u);
  t.Clear();
  EXPECT_EQ(cap.used(), 0u);
  EXPECT_EQ(t.entries(), 0u);
  EXPECT_FALSE(t.Lookup(0x1000).has_value());
}

TEST(Tcam, FullAddressSpaceEntry) {
  Tcam<int> t(nullptr);
  ASSERT_TRUE(t.InsertRange(0, 63, 42).ok());  // Half the 64-bit space.
  EXPECT_EQ(t.Lookup(0x7fff'ffff'ffff'ffffull).value(), 42);
  EXPECT_FALSE(t.Lookup(0x8000'0000'0000'0000ull).has_value());
}

}  // namespace
}  // namespace mind
