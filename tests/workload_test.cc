// Tests for the workload generators and the replay engine: statistical structure of the
// generated traces (the properties the paper's evaluation discriminates on) and correct
// replay accounting. Parameterized over the four paper workloads.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "src/baselines/fastswap.h"
#include "src/baselines/mind_system.h"
#include "src/workload/generators.h"
#include "src/workload/replay.h"

namespace mind {
namespace {

double SharedWriteRate(const WorkloadTraces& traces) {
  uint64_t shared_writes = 0;
  uint64_t total = 0;
  for (const auto& t : traces.threads) {
    for (const auto& op : t.ops) {
      total++;
      if (op.segment == 0 && op.type == AccessType::kWrite) {
        shared_writes++;
      }
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(shared_writes) / static_cast<double>(total);
}

double MetadataWriteRate(const WorkloadTraces& traces) {
  uint64_t md_writes = 0;
  uint64_t total = 0;
  for (const auto& t : traces.threads) {
    for (const auto& op : t.ops) {
      total++;
      if (op.segment == 1 && op.type == AccessType::kWrite) {
        md_writes++;
      }
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(md_writes) / static_cast<double>(total);
}

TEST(Generators, DeterministicForSeed) {
  const auto a = GenerateTraces(TfSpec(2, 2, 1000));
  const auto b = GenerateTraces(TfSpec(2, 2, 1000));
  ASSERT_EQ(a.threads.size(), b.threads.size());
  for (size_t t = 0; t < a.threads.size(); ++t) {
    ASSERT_EQ(a.threads[t].ops.size(), b.threads[t].ops.size());
    for (size_t i = 0; i < a.threads[t].ops.size(); ++i) {
      ASSERT_EQ(a.threads[t].ops[i].page, b.threads[t].ops[i].page);
      ASSERT_EQ(a.threads[t].ops[i].type, b.threads[t].ops[i].type);
    }
  }
}

TEST(Generators, OpsStayInsideSegments) {
  const auto traces = GenerateTraces(GcSpec(4, 2, 2000));
  for (const auto& t : traces.threads) {
    for (const auto& op : t.ops) {
      ASSERT_LT(op.segment, traces.segments.size());
      ASSERT_LT(op.page, traces.segments[op.segment].pages);
    }
  }
}

TEST(Generators, GcWritesMoreSharedDataThanTf) {
  // §7.1: "GC writes ~2.5x more data in shared pages than TF".
  const double tf = SharedWriteRate(GenerateTraces(TfSpec(4, 2, 20000)));
  const double gc = SharedWriteRate(GenerateTraces(GcSpec(4, 2, 20000)));
  EXPECT_GT(gc, 1.8 * tf);
  EXPECT_LT(gc, 8.0 * tf);
}

TEST(Generators, MemcachedCHasNoSharedTableWritesButKeepsMetadataWrites) {
  const auto mc = GenerateTraces(MemcachedCSpec(4, 2, 20000));
  EXPECT_DOUBLE_EQ(SharedWriteRate(mc), 0.0);  // YCSB-C: 100% GETs.
  // The LRU-touch writes remain — the paper's explanation for M_C's poor scaling.
  EXPECT_GT(MetadataWriteRate(mc), 0.2);
}

TEST(Generators, MemcachedAHasBothWriteKinds) {
  const auto ma = GenerateTraces(MemcachedASpec(4, 2, 20000));
  // ~0.95 * 0.5 of primary ops are SETs, diluted by the extra LRU-touch ops in the stream.
  EXPECT_GT(SharedWriteRate(ma), 0.2);
  EXPECT_GT(MetadataWriteRate(ma), 0.2);
}

TEST(Generators, KvsPartitioningIsLocal) {
  const int blades = 4;
  auto spec = NativeKvsSpec(blades, 2, 0.5, 20000);
  const auto traces = GenerateTraces(spec);
  const uint64_t partition = spec.shared_pages / blades;
  uint64_t local = 0;
  uint64_t shared_total = 0;
  for (size_t t = 0; t < traces.threads.size(); ++t) {
    const uint64_t blade = t % blades;
    for (const auto& op : traces.threads[t].ops) {
      if (op.segment != 0) {
        continue;
      }
      ++shared_total;
      if (op.page / partition == blade) {
        ++local;
      }
    }
  }
  ASSERT_GT(shared_total, 0u);
  const double locality = static_cast<double>(local) / static_cast<double>(shared_total);
  EXPECT_GT(locality, 0.8);  // ~85% + the uniform spill that lands locally by chance.
}

TEST(Generators, MicroRespectsReadRatio) {
  for (double read_ratio : {0.0, 0.5, 1.0}) {
    const auto traces = GenerateTraces(MicroSpec(4, read_ratio, 0.5, 40000, 10000));
    uint64_t writes = 0;
    uint64_t total = 0;
    for (const auto& t : traces.threads) {
      for (const auto& op : t.ops) {
        ++total;
        writes += op.type == AccessType::kWrite ? 1 : 0;
      }
    }
    EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(total), 1.0 - read_ratio,
                0.02);
  }
}

TEST(Generators, MicroRespectsSharingRatio) {
  for (double sharing : {0.25, 0.75}) {
    const auto traces = GenerateTraces(MicroSpec(4, 0.5, sharing, 40000, 10000));
    uint64_t shared = 0;
    uint64_t total = 0;
    for (const auto& t : traces.threads) {
      for (const auto& op : t.ops) {
        ++total;
        shared += op.segment == 0 ? 1 : 0;
      }
    }
    EXPECT_NEAR(static_cast<double>(shared) / static_cast<double>(total), sharing, 0.03);
  }
}

TEST(Generators, StridedPatternStepsByTheConfiguredStride) {
  WorkloadSpec spec;
  spec.name = "strided";
  spec.num_blades = 2;
  spec.threads_per_blade = 1;
  spec.private_pages_per_thread = 997;  // Prime: coprime with any stride, full coverage.
  spec.private_pattern = Pattern::kStrided;
  spec.stride_pages = 7;
  spec.accesses_per_thread = 3000;
  const auto traces = GenerateTraces(spec);
  for (size_t t = 0; t < traces.threads.size(); ++t) {
    const auto& ops = traces.threads[t].ops;
    ASSERT_GT(ops.size(), 100u);
    std::set<uint64_t> distinct;
    for (size_t i = 0; i < ops.size(); ++i) {
      ASSERT_EQ(ops[i].segment, 2 + t);  // Private-only spec.
      distinct.insert(ops[i].page);
      if (i > 0) {
        // Every consecutive delta is exactly the stride, mod the segment size.
        const uint64_t delta =
            (ops[i].page + spec.private_pages_per_thread - ops[i - 1].page) %
            spec.private_pages_per_thread;
        ASSERT_EQ(delta, spec.stride_pages) << "thread " << t << " op " << i;
      }
    }
    // A page-coprime stride visits the whole segment before repeating.
    EXPECT_EQ(distinct.size(), spec.private_pages_per_thread);
  }
}

TEST(Generators, PointerChaseIsAPermutedCycleWithoutAStride) {
  WorkloadSpec spec;
  spec.name = "chase";
  spec.num_blades = 1;
  spec.threads_per_blade = 1;
  spec.private_pages_per_thread = 512;
  spec.private_pattern = Pattern::kPointerChase;
  spec.accesses_per_thread = 1024;  // Two full laps of the cycle.
  const auto traces = GenerateTraces(spec);
  const auto& ops = traces.threads[0].ops;
  ASSERT_EQ(ops.size(), 1024u);
  // One lap visits every page exactly once (Sattolo builds a single cycle)...
  std::set<uint64_t> lap;
  for (size_t i = 0; i < 512; ++i) {
    lap.insert(ops[i].page);
  }
  EXPECT_EQ(lap.size(), 512u);
  // ...and the second lap replays the identical order (deterministic chase).
  for (size_t i = 0; i < 512; ++i) {
    ASSERT_EQ(ops[i].page, ops[i + 512].page);
  }
  // Distribution shape: no consecutive delta reaches a majority — the property that
  // makes the workload prefetch-hostile (the stride detector must sit out).
  std::map<int64_t, size_t> deltas;
  for (size_t i = 1; i < 512; ++i) {
    ++deltas[static_cast<int64_t>(ops[i].page - ops[i - 1].page)];
  }
  for (const auto& [delta, count] : deltas) {
    EXPECT_LT(count, 256u) << "delta " << delta << " has a majority";
  }
}

TEST(Generators, PointerChaseIsDeterministicForSeed) {
  WorkloadSpec spec;
  spec.num_blades = 1;
  spec.threads_per_blade = 2;
  spec.private_pages_per_thread = 256;
  spec.private_pattern = Pattern::kPointerChase;
  spec.accesses_per_thread = 500;
  const auto a = GenerateTraces(spec);
  const auto b = GenerateTraces(spec);
  for (size_t t = 0; t < a.threads.size(); ++t) {
    ASSERT_EQ(a.threads[t].ops.size(), b.threads[t].ops.size());
    for (size_t i = 0; i < a.threads[t].ops.size(); ++i) {
      ASSERT_EQ(a.threads[t].ops[i].page, b.threads[t].ops[i].page);
    }
  }
  // Different threads chase different permutations (per-thread seeding).
  bool differs = false;
  for (size_t i = 0; i < 100; ++i) {
    differs |= a.threads[0].ops[i].page != a.threads[1].ops[i].page;
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, MicroFootprintMatchesTotalPages) {
  const auto traces = GenerateTraces(MicroSpec(8, 0.5, 0.5, 400'000, 100));
  // Shared + per-thread private partitions must roughly reassemble the working set.
  EXPECT_NEAR(static_cast<double>(traces.FootprintPages()), 400'000.0, 4000.0);
}

// --- Replay engine ------------------------------------------------------------------------

TEST(Replay, RunsToCompletionAndCounts) {
  RackConfig cfg;
  cfg.num_compute_blades = 2;
  cfg.num_memory_blades = 2;
  cfg.memory_blade_capacity = 1ull << 30;
  MindSystem sys(cfg);
  auto spec = MicroSpec(2, 0.5, 0.5, 2000, 500);
  const auto traces = GenerateTraces(spec);
  ReplayEngine engine(&sys, &traces);
  ASSERT_TRUE(engine.Setup().ok());
  const auto report = engine.Run();
  EXPECT_EQ(report.total_ops, traces.TotalOps());
  EXPECT_GT(report.makespan, 0u);
  EXPECT_GT(report.throughput_mops, 0.0);
  EXPECT_EQ(report.counters.total_accesses, report.total_ops);
  EXPECT_GT(report.counters.remote_accesses, 0u);
  EXPECT_EQ(report.latency_histogram.count(), report.total_ops);
}

TEST(Replay, SetupTwiceRejected) {
  FastSwapConfig cfg;
  FastSwapSystem sys(cfg);
  auto spec = MicroSpec(1, 1.0, 0.0, 1000, 100);
  const auto traces = GenerateTraces(spec);
  ReplayEngine engine(&sys, &traces);
  ASSERT_TRUE(engine.Setup().ok());
  EXPECT_FALSE(engine.Setup().ok());
}

TEST(Replay, SamplerFiresAtIntervals) {
  RackConfig cfg;
  cfg.num_compute_blades = 1;
  cfg.num_memory_blades = 1;
  MindSystem sys(cfg);
  auto spec = MicroSpec(1, 0.5, 0.0, 2000, 2000);
  const auto traces = GenerateTraces(spec);
  ReplayEngine engine(&sys, &traces);
  ASSERT_TRUE(engine.Setup().ok());
  int samples = 0;
  SimTime last = 0;
  const auto report = engine.Run(
      [&](SimTime now) {
        ++samples;
        EXPECT_GE(now, last);
        last = now;
      },
      kMillisecond);
  EXPECT_GT(samples, 0);
  EXPECT_LE(last, report.makespan);
}

// Parameterized smoke replay over every paper workload preset on MIND.
class WorkloadReplayTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadReplayTest, ReplaysOnMind) {
  const std::string which = GetParam();
  WorkloadSpec spec;
  if (which == "TF") {
    spec = TfSpec(2, 2, 2000);
  } else if (which == "GC") {
    spec = GcSpec(2, 2, 2000);
  } else if (which == "MA") {
    spec = MemcachedASpec(2, 2, 2000);
  } else if (which == "MC") {
    spec = MemcachedCSpec(2, 2, 2000);
  } else {
    spec = NativeKvsSpec(2, 2, 0.5, 2000);
  }
  RackConfig cfg;
  cfg.num_compute_blades = 2;
  cfg.num_memory_blades = 2;
  cfg.memory_blade_capacity = 4ull << 30;
  cfg.compute_cache_bytes = 64ull << 20;
  MindSystem sys(cfg);
  const auto traces = GenerateTraces(spec);
  ReplayEngine engine(&sys, &traces);
  ASSERT_TRUE(engine.Setup().ok());
  const auto report = engine.Run();
  EXPECT_EQ(report.total_ops, traces.TotalOps());
  EXPECT_GT(report.throughput_mops, 0.0);
  // Shared writes (table or metadata) must exercise the coherence machinery on all
  // workloads except pure private ones.
  if (which != "TF") {
    EXPECT_GT(report.counters.invalidations, 0u) << which;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperWorkloads, WorkloadReplayTest,
                         ::testing::Values("TF", "GC", "MA", "MC", "KVS"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace mind
