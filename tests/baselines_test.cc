// Tests for the compared systems (§7): the MemorySystem adapter over MIND, the GAM-like
// software DSM, and the FastSwap-like swap system — including the qualitative behaviours
// the paper's comparison hinges on.
#include <gtest/gtest.h>

#include "src/baselines/fastswap.h"
#include "src/baselines/gam.h"
#include "src/baselines/mind_system.h"

namespace mind {
namespace {

TEST(MindSystem, AllocRegisterAccess) {
  RackConfig cfg;
  cfg.num_compute_blades = 2;
  cfg.num_memory_blades = 2;
  cfg.memory_blade_capacity = 1ull << 30;
  MindSystem sys(cfg);
  EXPECT_EQ(sys.name(), "MIND");
  EXPECT_EQ(sys.num_compute_blades(), 2);
  auto va = sys.Alloc(1 << 20);
  ASSERT_TRUE(va.ok());
  auto tid = sys.RegisterThread(1);
  ASSERT_TRUE(tid.ok());
  auto r = sys.Access(*tid, 1, *va, AccessType::kRead, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_FALSE(r.local_hit);
  EXPECT_EQ(sys.counters().remote_accesses, 1u);
  auto r2 = sys.Access(*tid, 1, *va, AccessType::kRead, r.completion);
  EXPECT_TRUE(r2.local_hit);
  EXPECT_EQ(sys.counters().local_hits, 1u);
}

TEST(MindSystem, CustomLabel) {
  RackConfig cfg = RackConfig::PsoPlus();
  cfg.num_compute_blades = 1;
  cfg.num_memory_blades = 1;
  MindSystem sys(cfg, "MIND-PSO+");
  EXPECT_EQ(sys.name(), "MIND-PSO+");
  EXPECT_EQ(sys.rack().config().consistency, ConsistencyModel::kPso);
}

class GamTest : public ::testing::Test {
 protected:
  GamTest() {
    GamConfig cfg;
    cfg.num_compute_blades = 4;
    cfg.num_memory_blades = 2;
    sys_ = std::make_unique<GamSystem>(cfg);
    va_ = *sys_->Alloc(8 << 20);
    for (int i = 0; i < 4; ++i) {
      tids_.push_back(*sys_->RegisterThread(static_cast<ComputeBladeId>(i)));
    }
  }
  std::unique_ptr<GamSystem> sys_;
  VirtAddr va_ = 0;
  std::vector<ThreadId> tids_;
};

TEST_F(GamTest, LocalHitsPaySoftwareOverhead) {
  auto miss = sys_->Access(tids_[0], 0, va_, AccessType::kRead, 0);
  auto hit = sys_->Access(tids_[0], 0, va_, AccessType::kRead, miss.completion);
  EXPECT_TRUE(hit.local_hit);
  // The paper: GAM local accesses are ~10x slower than MIND's MMU-backed hits (<100ns).
  EXPECT_GE(hit.latency, 500u);
  EXPECT_LE(hit.latency, 3000u);
}

TEST_F(GamTest, RemoteMissSlowerThanLocal) {
  auto miss = sys_->Access(tids_[0], 0, va_, AccessType::kRead, 0);
  EXPECT_FALSE(miss.local_hit);
  EXPECT_GT(ToMicros(miss.latency), 5.0);  // Home handler + memory fetch.
  EXPECT_EQ(sys_->counters().remote_accesses, 1u);
}

TEST_F(GamTest, WritesArePsoAsync) {
  // Prime two sharers so the write requires invalidations.
  SimTime t = 0;
  t = sys_->Access(tids_[0], 0, va_, AccessType::kRead, t).completion;
  t = sys_->Access(tids_[1], 1, va_, AccessType::kRead, t).completion;
  auto w = sys_->Access(tids_[2], 2, va_, AccessType::kWrite, t);
  // Thread-visible write latency is the library handoff, not the full transition.
  EXPECT_LT(w.latency, 3000u);
  EXPECT_GT(w.completion, t + w.latency);
  EXPECT_GT(sys_->counters().invalidations, 0u);
}

TEST_F(GamTest, ReadAfterPsoWriteBlocks) {
  SimTime t = 0;
  t = sys_->Access(tids_[0], 0, va_, AccessType::kRead, t).completion;
  auto w = sys_->Access(tids_[1], 1, va_, AccessType::kWrite, t);
  auto r = sys_->Access(tids_[1], 1, va_, AccessType::kRead, t + w.latency);
  EXPECT_GE(t + w.latency + r.latency, w.completion);
}

TEST_F(GamTest, InvalidationDropsRemoteCopy) {
  SimTime t = 0;
  t = sys_->Access(tids_[0], 0, va_, AccessType::kRead, t).completion;
  auto w = sys_->Access(tids_[1], 1, va_, AccessType::kWrite, t);
  // Blade 0's copy was invalidated: its next read misses again.
  auto r = sys_->Access(tids_[0], 0, va_, AccessType::kRead, w.completion);
  EXPECT_FALSE(r.local_hit);
}

TEST_F(GamTest, DirectoryHasNoCapacityLimit) {
  // Page-granularity DRAM-resident directory: thousands of distinct pages, no evictions.
  SimTime t = 0;
  for (uint64_t p = 0; p < 2000; ++p) {
    auto r = sys_->Access(tids_[0], 0, va_ + PageToAddr(p), AccessType::kWrite, t);
    ASSERT_TRUE(r.status.ok());
    t += 1000;
  }
  EXPECT_EQ(sys_->counters().false_invalidations, 0u);  // Exact page tracking.
}

TEST(FastSwap, SingleBladeOnly) {
  FastSwapConfig cfg;
  FastSwapSystem sys(cfg);
  EXPECT_EQ(sys.num_compute_blades(), 1);
  EXPECT_TRUE(sys.RegisterThread(0).ok());
  // The defining non-transparency: no second blade (§2.2).
  EXPECT_FALSE(sys.RegisterThread(1).ok());
}

TEST(FastSwap, FaultFetchHitCycle) {
  FastSwapConfig cfg;
  FastSwapSystem sys(cfg);
  auto va = *sys.Alloc(1 << 20);
  auto tid = *sys.RegisterThread(0);
  auto miss = sys.Access(tid, 0, va, AccessType::kRead, 0);
  EXPECT_FALSE(miss.local_hit);
  EXPECT_GE(ToMicros(miss.latency), 5.0);
  EXPECT_LE(ToMicros(miss.latency), 10.0);
  auto hit = sys.Access(tid, 0, va, AccessType::kWrite, miss.completion);
  EXPECT_TRUE(hit.local_hit);
  EXPECT_LT(hit.latency, 100u);
}

TEST(FastSwap, EvictionWritesBackDirty) {
  FastSwapConfig cfg;
  cfg.compute_cache_bytes = 4 * kPageSize;
  FastSwapSystem sys(cfg);
  auto va = *sys.Alloc(1 << 20);
  auto tid = *sys.RegisterThread(0);
  SimTime t = 0;
  for (uint64_t p = 0; p < 16; ++p) {
    t = sys.Access(tid, 0, va + PageToAddr(p), AccessType::kWrite, t).completion;
  }
  EXPECT_GT(sys.counters().pages_flushed, 0u);
}

TEST(FastSwap, NoCoherenceTraffic) {
  FastSwapConfig cfg;
  FastSwapSystem sys(cfg);
  auto va = *sys.Alloc(1 << 20);
  auto tid = *sys.RegisterThread(0);
  SimTime t = 0;
  for (uint64_t p = 0; p < 32; ++p) {
    t = sys.Access(tid, 0, va + PageToAddr(p), AccessType::kWrite, t).completion;
  }
  EXPECT_EQ(sys.counters().invalidations, 0u);
  EXPECT_EQ(sys.counters().false_invalidations, 0u);
}

}  // namespace
}  // namespace mind
