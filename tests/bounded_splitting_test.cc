// Tests for the Bounded Splitting algorithm (§5): threshold-driven splits, cold merges,
// dynamic c adjustment, the Theorem 5.1 bound, and the split/merge equilibrium.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/controlplane/bounded_splitting.h"
#include "src/dataplane/directory.h"

namespace mind {
namespace {

constexpr uint64_t kMiB = 1024 * 1024;

BoundedSplittingConfig Config() {
  BoundedSplittingConfig c;
  c.epoch_length = 100 * kMillisecond;
  c.initial_region_size = 16 * 1024;
  c.base_region_size = 2 * kMiB;
  return c;
}

TEST(BoundedSplitting, HotRegionSplits) {
  CacheDirectory dir(1000);
  BoundedSplitting bs(&dir, Config());
  bs.OnAllocationChanged(8 * kMiB);  // N = 4 base regions.

  auto hot = dir.Create(0x0, 16);  // 64 KB region.
  ASSERT_TRUE(hot.ok());
  (*hot)->epoch_false_invalidations = 100;
  auto cold = dir.Create(0x200000, 16);
  ASSERT_TRUE(cold.ok());
  (*cold)->epoch_false_invalidations = 0;

  bs.RunEpoch(100 * kMillisecond);
  // Threshold t = 100 / (1 * 4) = 25; the hot region (f=100 > 25) splits once.
  EXPECT_GT(bs.stats().last_threshold, 0.0);
  EXPECT_EQ(bs.stats().splits, 1u);
  EXPECT_NE(dir.Lookup(0x8000), nullptr);  // Upper half exists separately.
  EXPECT_EQ(dir.Lookup(0x0)->size(), 0x8000u);
}

TEST(BoundedSplitting, SplitStopsAtPageSize) {
  CacheDirectory dir(1000);
  BoundedSplitting bs(&dir, Config());
  bs.OnAllocationChanged(2 * kMiB);
  ASSERT_TRUE(dir.Create(0x0, 12).ok());  // Already 4 KB.
  dir.Lookup(0x0)->epoch_false_invalidations = 1000;
  bs.RunEpoch(100 * kMillisecond);
  EXPECT_EQ(bs.stats().splits, 0u);
  EXPECT_EQ(dir.Lookup(0x0)->size(), kPageSize);
}

TEST(BoundedSplitting, RepeatedEpochsConvergeBelowThreshold) {
  // A 2 MB region whose false invalidations halve with each split (splitting localizes
  // the hot page) must stop splitting once below threshold.
  CacheDirectory dir(1000);
  BoundedSplitting bs(&dir, Config());
  bs.OnAllocationChanged(64 * kMiB);  // N = 32.

  ASSERT_TRUE(dir.Create(0x0, 21).ok());
  uint64_t f = 256;
  for (int epoch = 0; epoch < 12; ++epoch) {
    // Re-apply false invalidations to whichever region covers the hot page at 0x0.
    DirectoryEntry* e = dir.Lookup(0x0);
    ASSERT_NE(e, nullptr);
    e->epoch_false_invalidations = f;
    bs.RunEpoch(static_cast<SimTime>(epoch + 1) * 100 * kMillisecond);
    f = f > 2 ? f / 2 : f;
  }
  // The hot region shrank substantially but the directory stayed small.
  EXPECT_LT(dir.Lookup(0x0)->size(), 2 * kMiB);
  EXPECT_LT(dir.entry_count(), 32u);
}

TEST(BoundedSplitting, ColdBuddiesMergeUnderCapacityPressure) {
  CacheDirectory dir(8);  // Small SRAM: utilization high enough for merging to engage.
  auto cfg = Config();
  BoundedSplitting bs(&dir, cfg);
  bs.OnAllocationChanged(8 * kMiB);

  ASSERT_TRUE(dir.Create(0x0, 13).ok());
  ASSERT_TRUE(dir.Create(0x2000, 13).ok());
  // Some false invalidations elsewhere so t > 0 (merge needs a defined threshold), renewed
  // each epoch; the cold pair must stay quiet past the hysteresis window before merging.
  auto busy = dir.Create(0x400000, 14);
  ASSERT_TRUE(busy.ok());
  for (uint32_t epoch = 1; epoch <= 1 + bs.config().merge_quiet_epochs; ++epoch) {
    DirectoryEntry* hot = dir.Lookup(0x400000);
    ASSERT_NE(hot, nullptr);
    hot->epoch_false_invalidations = 400;
    bs.RunEpoch(epoch * 100 * kMillisecond);
  }
  // The two cold 8 KB buddies merged into one 16 KB region.
  DirectoryEntry* merged = dir.Lookup(0x2000);
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->base, 0x0u);
  EXPECT_EQ(merged->size(), 0x4000u);
  EXPECT_GE(bs.stats().merges, 1u);
}

TEST(BoundedSplitting, NoMergingWhenSlotsPlentiful) {
  // With a near-empty directory, merging would only recreate false invalidations on
  // hot-but-currently-quiet regions; it must stay off below the low-water mark.
  CacheDirectory dir(1000);
  BoundedSplitting bs(&dir, Config());
  bs.OnAllocationChanged(8 * kMiB);
  ASSERT_TRUE(dir.Create(0x0, 13).ok());
  ASSERT_TRUE(dir.Create(0x2000, 13).ok());
  bs.RunEpoch(100 * kMillisecond);
  EXPECT_EQ(dir.entry_count(), 2u);
  EXPECT_EQ(bs.stats().merges, 0u);
}

TEST(BoundedSplitting, HotBuddyBlocksMerge) {
  CacheDirectory dir(8);
  BoundedSplitting bs(&dir, Config());
  bs.OnAllocationChanged(8 * kMiB);
  auto lo = dir.Create(0x0, 13);
  auto hi = dir.Create(0x2000, 13);
  ASSERT_TRUE(lo.ok() && hi.ok());
  // Lower buddy is cold, upper buddy accounts for nearly all false invalidations: the
  // *combined* count must block the merge even though the proposer itself is cold.
  (*hi)->epoch_false_invalidations = 100;
  auto other = dir.Create(0x400000, 14);
  (*other)->epoch_false_invalidations = 4;
  bs.RunEpoch(100 * kMillisecond);
  EXPECT_NE(dir.Lookup(0x2000), nullptr);
  EXPECT_EQ(dir.Lookup(0x2000)->base, 0x2000u);  // Still separate.
}

TEST(BoundedSplitting, MergeCapAtBaseRegionSize) {
  CacheDirectory dir(1000);
  auto cfg = Config();
  cfg.base_region_size = 16 * 1024;  // Cap M at 16 KB for the test.
  BoundedSplitting bs(&dir, cfg);
  bs.OnAllocationChanged(kMiB);
  ASSERT_TRUE(dir.Create(0x0, 14).ok());      // 16 KB == cap.
  ASSERT_TRUE(dir.Create(0x4000, 14).ok());
  bs.RunEpoch(100 * kMillisecond);
  // Already at the cap: no merge.
  EXPECT_EQ(dir.entry_count(), 2u);
}

TEST(BoundedSplitting, CapacityPressureLowersC) {
  CacheDirectory dir(4);  // Tiny SRAM.
  BoundedSplitting bs(&dir, Config());
  bs.OnAllocationChanged(8 * kMiB);
  // Fill the directory with non-buddy entries (nothing mergeable); one distinctly hot.
  ASSERT_TRUE(dir.Create(0x0, 14).ok());
  ASSERT_TRUE(dir.Create(0x8000, 14).ok());
  ASSERT_TRUE(dir.Create(0x100000, 14).ok());
  ASSERT_TRUE(dir.Create(0x180000, 14).ok());
  dir.Lookup(0x0)->epoch_false_invalidations = 3000;
  dir.Lookup(0x8000)->epoch_false_invalidations = 10;

  const double c_before = bs.current_c();
  bs.RunEpoch(100 * kMillisecond);
  // Splits were refused (utilization at 100% >= 95% target) and c shrank, raising the
  // threshold so future epochs stop proposing splits the SRAM cannot hold.
  EXPECT_GT(bs.stats().split_failures, 0u);
  EXPECT_LT(bs.current_c(), c_before);
  EXPECT_LE(dir.entry_count(), 4u);
}

TEST(BoundedSplitting, LowUtilizationRaisesC) {
  CacheDirectory dir(30000);
  BoundedSplitting bs(&dir, Config());
  bs.OnAllocationChanged(8 * kMiB);
  ASSERT_TRUE(dir.Create(0x0, 14).ok());
  const double c_before = bs.current_c();
  bs.RunEpoch(100 * kMillisecond);
  // Plenty of free slots: c grows, lowering the threshold for finer-grained tracking.
  EXPECT_GT(bs.current_c(), c_before);
}

TEST(BoundedSplitting, MaybeRunEpochFiresOnBoundaries) {
  CacheDirectory dir(100);
  BoundedSplitting bs(&dir, Config());
  bs.OnAllocationChanged(2 * kMiB);
  bs.MaybeRunEpoch(50 * kMillisecond);
  EXPECT_EQ(bs.stats().epochs, 0u);
  bs.MaybeRunEpoch(250 * kMillisecond);  // Crosses epochs at 100 and 200 ms.
  EXPECT_EQ(bs.stats().epochs, 2u);
  bs.MaybeRunEpoch(260 * kMillisecond);
  EXPECT_EQ(bs.stats().epochs, 2u);
}

TEST(BoundedSplitting, DisabledDoesNothing) {
  CacheDirectory dir(100);
  auto cfg = Config();
  cfg.enabled = false;
  BoundedSplitting bs(&dir, cfg);
  ASSERT_TRUE(dir.Create(0x0, 14).ok());
  dir.Lookup(0x0)->epoch_false_invalidations = 1'000'000;
  bs.MaybeRunEpoch(kSecond);
  EXPECT_EQ(bs.stats().epochs, 0u);
  EXPECT_EQ(dir.Lookup(0x0)->size(), 0x4000u);
}

TEST(Theorem51, BoundFormula) {
  // S = (ceil(f/t) - 1) * (1 + log2 M), M in pages.
  const uint64_t m_pages = 512;  // 2 MB.
  EXPECT_EQ(BoundedSplitting::TheoremBound(0, 10.0, m_pages), 1u);    // f <= t: no split.
  EXPECT_EQ(BoundedSplitting::TheoremBound(10, 10.0, m_pages), 1u);   // Case 1.
  EXPECT_EQ(BoundedSplitting::TheoremBound(15, 10.0, m_pages),
            1u * (1 + 9));                                            // Case 2: k=2.
  EXPECT_EQ(BoundedSplitting::TheoremBound(35, 10.0, m_pages),
            3u * (1 + 9));                                            // Case 3: k=4.
}

TEST(Theorem51, EmpiricalSplitsNeverExceedBound) {
  // Property check: simulate adversarial per-epoch false-invalidation assignments against
  // one 2 MB base region and verify the realized sub-region count never exceeds the bound.
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    CacheDirectory dir(100000);
    auto cfg = Config();
    cfg.initial_region_size = 2 * kMiB;  // Start at the base size M.
    cfg.merge_fraction = 0.0;            // Disable merging: worst case for entry count.
    BoundedSplitting bs(&dir, cfg);
    bs.OnAllocationChanged(2 * kMiB);  // N = 1.
    ASSERT_TRUE(dir.Create(0x0, 21).ok());

    const uint64_t total_f = 100 + rng.NextBelow(2000);
    uint64_t remaining = total_f;
    double max_t = 0.0;
    // Feed the total false-invalidation budget over several epochs, concentrated on the
    // region covering a random hot page each epoch (adversarial placement).
    for (int epoch = 0; epoch < 15 && remaining > 0; ++epoch) {
      const uint64_t this_epoch = std::min<uint64_t>(remaining, 50 + rng.NextBelow(300));
      DirectoryEntry* e = dir.Lookup(rng.NextBelow(512) * kPageSize);
      ASSERT_NE(e, nullptr);
      e->epoch_false_invalidations = this_epoch;
      remaining -= this_epoch;
      bs.RunEpoch(static_cast<SimTime>(epoch + 1) * cfg.epoch_length);
      max_t = std::max(max_t, bs.stats().last_threshold > 0 ? bs.stats().last_threshold : 0.0);
    }
    if (max_t <= 0.0) {
      continue;
    }
    // Theorem 5.1 with the *smallest* effective threshold (most permissive splitting).
    const uint64_t bound = BoundedSplitting::TheoremBound(
        total_f, std::max(bs.stats().last_threshold, 1e-9), 512);
    EXPECT_LE(dir.entry_count(), std::max<uint64_t>(bound, 1u) + 1)
        << "trial " << trial << " total_f " << total_f;
  }
}

}  // namespace
}  // namespace mind
