// LRU-order parity test for the flat-hash DramCache: a reference model built exactly the
// way the seed implementation was (ordered std::map of frames + std::list recency list) is
// driven in lockstep with the real cache through randomized insert/lookup/upgrade/dirty/
// invalidate/downgrade sequences. Eviction order, the dirty write-back set, range
// invalidation results and occupancy must be identical at every step — the refactor must
// be observationally indistinguishable from the seed semantics.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "src/blade/dram_cache.h"
#include "src/common/rng.h"

namespace mind {
namespace {

// Reference model mirroring the seed DramCache exactly.
class RefCache {
 public:
  explicit RefCache(uint64_t capacity) : capacity_(capacity) {}

  struct Frame {
    bool dirty = false;
    bool writable = false;
    ProtDomainId pdid = 0;
    std::list<uint64_t>::iterator lru_it;
  };

  Frame* Lookup(uint64_t page) {
    auto it = frames_.find(page);
    if (it == frames_.end()) {
      return nullptr;
    }
    Touch(page, it->second);
    return &it->second;
  }

  struct Evicted {
    uint64_t page;
    bool dirty;
  };
  std::optional<Evicted> Insert(uint64_t page, bool writable, ProtDomainId pdid) {
    if (auto it = frames_.find(page); it != frames_.end()) {
      it->second.writable = it->second.writable || writable;
      it->second.pdid = pdid;
      Touch(page, it->second);
      return std::nullopt;
    }
    std::optional<Evicted> ev;
    if (frames_.size() >= capacity_ && capacity_ > 0) {
      const uint64_t victim = lru_.back();
      lru_.pop_back();
      ev = Evicted{victim, frames_[victim].dirty};
      frames_.erase(victim);
    }
    Frame f;
    f.writable = writable;
    f.pdid = pdid;
    lru_.push_front(page);
    f.lru_it = lru_.begin();
    frames_.emplace(page, f);
    return ev;
  }

  void MakeWritable(uint64_t page) {
    if (auto it = frames_.find(page); it != frames_.end()) {
      it->second.writable = true;
    }
  }
  void MarkDirty(uint64_t page) {
    if (auto it = frames_.find(page); it != frames_.end()) {
      it->second.dirty = true;
    }
  }

  struct RangeResult {
    std::vector<uint64_t> flushed;  // Ascending page order.
    uint64_t dropped_clean = 0;
  };
  RangeResult InvalidateRange(uint64_t begin, uint64_t end) {
    RangeResult r;
    auto it = frames_.lower_bound(begin);
    while (it != frames_.end() && it->first < end) {
      if (it->second.dirty) {
        r.flushed.push_back(it->first);
      } else {
        ++r.dropped_clean;
      }
      lru_.erase(it->second.lru_it);
      it = frames_.erase(it);
    }
    return r;
  }

  RangeResult DowngradeRange(uint64_t begin, uint64_t end) {
    RangeResult r;
    for (auto it = frames_.lower_bound(begin); it != frames_.end() && it->first < end; ++it) {
      if (it->second.dirty) {
        r.flushed.push_back(it->first);
        it->second.dirty = false;
      }
      it->second.writable = false;
    }
    return r;
  }

  uint64_t CountRange(uint64_t begin, uint64_t end) const {
    uint64_t n = 0;
    for (auto it = frames_.lower_bound(begin); it != frames_.end() && it->first < end; ++it) {
      ++n;
    }
    return n;
  }

  [[nodiscard]] uint64_t size() const { return frames_.size(); }
  [[nodiscard]] const std::list<uint64_t>& lru() const { return lru_; }

 private:
  void Touch(uint64_t page, Frame& f) {
    lru_.erase(f.lru_it);
    lru_.push_front(page);
    f.lru_it = lru_.begin();
  }

  uint64_t capacity_;
  std::map<uint64_t, Frame> frames_;
  std::list<uint64_t> lru_;
};

class DramCacheParityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DramCacheParityTest, FlatCacheMatchesSeedSemantics) {
  constexpr uint64_t kCapacity = 48;
  constexpr uint64_t kPageSpace = 1400;  // Spans three 512-page regions.
  DramCache cache(kCapacity, /*store_data=*/false);
  RefCache ref(kCapacity);
  Rng rng(GetParam());

  for (int step = 0; step < 6000; ++step) {
    const double roll = rng.NextDouble();
    const uint64_t page = rng.NextBelow(kPageSpace);
    if (roll < 0.45) {
      const bool writable = rng.NextBelow(2) == 0;
      const ProtDomainId pdid = static_cast<ProtDomainId>(rng.NextBelow(3));
      auto got = cache.Insert(page, writable, nullptr, pdid);
      auto want = ref.Insert(page, writable, pdid);
      ASSERT_EQ(got.has_value(), want.has_value()) << "step " << step;
      if (got.has_value()) {
        ASSERT_EQ(got->page, want->page) << "eviction order diverged at step " << step;
        ASSERT_EQ(got->dirty, want->dirty) << "write-back set diverged at step " << step;
      }
    } else if (roll < 0.65) {
      DramCache::Frame* got = cache.Lookup(page);
      RefCache::Frame* want = ref.Lookup(page);
      ASSERT_EQ(got != nullptr, want != nullptr) << "step " << step;
      if (got != nullptr) {
        ASSERT_EQ(got->writable, want->writable);
        ASSERT_EQ(got->dirty, want->dirty);
        ASSERT_EQ(got->pdid, want->pdid);
        ASSERT_EQ(got->page, page);
      }
    } else if (roll < 0.75) {
      cache.MakeWritable(page);
      ref.MakeWritable(page);
      cache.MarkDirty(page);
      ref.MarkDirty(page);
    } else if (roll < 0.85) {
      const uint64_t span = 1 + rng.NextBelow(600);  // Crosses region boundaries.
      const uint64_t begin = rng.NextBelow(kPageSpace);
      auto got = cache.InvalidateRange(begin, begin + span);
      auto want = ref.InvalidateRange(begin, begin + span);
      ASSERT_EQ(got.dropped_clean, want.dropped_clean) << "step " << step;
      ASSERT_EQ(got.flushed.size(), want.flushed.size()) << "step " << step;
      for (size_t i = 0; i < got.flushed.size(); ++i) {
        ASSERT_EQ(got.flushed[i].page, want.flushed[i]) << "flush order at step " << step;
        ASSERT_TRUE(got.flushed[i].dirty);
      }
    } else if (roll < 0.92) {
      const uint64_t span = 1 + rng.NextBelow(600);
      const uint64_t begin = rng.NextBelow(kPageSpace);
      auto got = cache.DowngradeRange(begin, begin + span);
      auto want = ref.DowngradeRange(begin, begin + span);
      ASSERT_EQ(got.flushed.size(), want.flushed.size()) << "step " << step;
      for (size_t i = 0; i < got.flushed.size(); ++i) {
        ASSERT_EQ(got.flushed[i].page, want.flushed[i]);
      }
    } else {
      const uint64_t span = 1 + rng.NextBelow(600);
      const uint64_t begin = rng.NextBelow(kPageSpace);
      ASSERT_EQ(cache.CountRange(begin, begin + span), ref.CountRange(begin, begin + span));
    }

    ASSERT_EQ(cache.size(), ref.size()) << "step " << step;

    if (step % 1500 == 1499) {
      // Drain through pure capacity eviction: inserting fresh sentinel pages forces every
      // resident page out oldest-first, so the two caches must emit identical eviction
      // sequences — the strongest whole-list LRU-parity statement available.
      const uint64_t resident = cache.size();
      uint64_t sentinel = kPageSpace + static_cast<uint64_t>(step) * kCapacity;
      for (uint64_t i = 0; i < resident; ++i, ++sentinel) {
        auto got = cache.Insert(sentinel, false, nullptr, 0);
        auto want = ref.Insert(sentinel, false, 0);
        ASSERT_EQ(got.has_value(), want.has_value());
        if (got.has_value()) {
          ASSERT_EQ(got->page, want->page) << "drain order diverged at " << i;
          ASSERT_EQ(got->dirty, want->dirty);
        }
      }
      // Clear the sentinels so the next phase starts from the common working set.
      (void)cache.InvalidateRange(0, sentinel + 1);
      (void)ref.InvalidateRange(0, sentinel + 1);
      ASSERT_EQ(cache.size(), ref.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DramCacheParityTest, ::testing::Values(3u, 17u, 29u));

// Direct LRU-order check without the reference: recency must follow Lookup/Insert/Touch.
TEST(DramCacheLru, EvictionFollowsRecency) {
  DramCache c(3, false);
  (void)c.Insert(1, false);
  (void)c.Insert(2, false);
  (void)c.Insert(3, false);
  (void)c.Lookup(1);            // Order (MRU..LRU): 1, 3, 2.
  c.Touch(c.Find(2));           // Order: 2, 1, 3.
  auto ev = c.Insert(4, false); // Evicts 3.
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->page, 3u);
  ev = c.Insert(5, false);      // Evicts 1 (2 was touched after it).
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->page, 1u);
  ev = c.Insert(6, false);      // Evicts 2.
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->page, 2u);
}

}  // namespace
}  // namespace mind
