// Tests for the prefetch subsystem (src/prefetch/prefetch.h):
//   1. StrideDetector vs a naive reference model — warm-up, stride changes, interleaved
//      streams, random noise.
//   2. PrefetchEngine policy predictions, adaptive window and in-flight bounds.
//   3. End-to-end coverage on all three systems: streaming/strided workloads must cover
//      a large fraction of would-be remote faults; pointer chase must not speculate.
//   4. Invalidation safety: a wave that lands between issue and arrival discards the
//      stale in-flight copy.
//   5. kNone conformance: with the default policy, channel replay at 1 and 4 shards is
//      bit-identical to the pre-prefetch per-op reference path for every system.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/baselines/fastswap.h"
#include "src/baselines/gam.h"
#include "src/baselines/mind_system.h"
#include "src/blade/dram_cache.h"
#include "src/common/rng.h"
#include "src/prefetch/prefetch.h"
#include "src/workload/generators.h"
#include "src/workload/replay.h"

namespace mind {
namespace {

// --- Part 1: stride detector vs naive reference -------------------------------

// Naive model: keep the last `history` pages, recompute every delta's count, report the
// unique delta with a strict majority (and at least kWarmupDeltas deltas), else 0.
class NaiveDetector {
 public:
  explicit NaiveDetector(uint32_t history) : history_(history < 2 ? 2 : history) {}

  void Record(uint64_t page) {
    pages_.push_back(page);
    if (pages_.size() > history_) {
      pages_.erase(pages_.begin());
    }
  }

  [[nodiscard]] int64_t MajorityStride() const {
    if (pages_.size() < 2) {
      return 0;
    }
    const size_t deltas = pages_.size() - 1;
    if (deltas < StrideDetector::kWarmupDeltas) {
      return 0;
    }
    std::map<int64_t, size_t> counts;
    for (size_t i = 0; i + 1 < pages_.size(); ++i) {
      ++counts[static_cast<int64_t>(pages_[i + 1] - pages_[i])];
    }
    for (const auto& [delta, count] : counts) {
      if (delta != 0 && count * 2 > deltas) {
        return delta;
      }
    }
    return 0;
  }

 private:
  uint32_t history_;
  std::vector<uint64_t> pages_;
};

TEST(StrideDetector, WarmupProducesNoStride) {
  StrideDetector d(32);
  d.Record(100);
  d.Record(101);
  d.Record(102);
  EXPECT_EQ(d.MajorityStride(), 0) << "2 deltas is below the warm-up threshold";
  d.Record(103);  // 3 deltas: warm.
  EXPECT_EQ(d.MajorityStride(), 1);
}

TEST(StrideDetector, MatchesNaiveReferenceOnRandomSequences) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t history = 4 + static_cast<uint32_t>(rng.NextBelow(60));
    StrideDetector detector(history);
    NaiveDetector naive(history);
    uint64_t page = 1'000'000;
    for (int step = 0; step < 400; ++step) {
      // Mix of steady strides, jumps and noise so majorities form and dissolve.
      const uint64_t kind = rng.NextBelow(10);
      if (kind < 6) {
        page += 3;  // Dominant stride.
      } else if (kind < 8) {
        page += rng.NextBelow(1000);
      } else {
        page -= rng.NextBelow(500);
      }
      detector.Record(page);
      naive.Record(page);
      ASSERT_EQ(detector.MajorityStride(), naive.MajorityStride())
          << "trial " << trial << " step " << step << " history " << history;
    }
  }
}

TEST(StrideDetector, AdaptsToStrideChange) {
  StrideDetector d(16);
  uint64_t page = 500;
  for (int i = 0; i < 16; ++i) {
    d.Record(page += 3);
  }
  EXPECT_EQ(d.MajorityStride(), 3);
  // After the new stride fills a majority of the ring, the vote flips.
  for (int i = 0; i < 10; ++i) {
    d.Record(page += 9);
  }
  EXPECT_EQ(d.MajorityStride(), 9);
}

TEST(StrideDetector, InterleavedStreamsNeedADominantStride) {
  // 2:1 interleave of a stride-2 stream and a far-away random stream: only 1 in 3
  // deltas equals 2, so the majority vote must refuse to guess.
  StrideDetector d(30);
  Rng rng(7);
  uint64_t a = 1'000'000;
  for (int i = 0; i < 30; ++i) {
    d.Record(a += 2);
    d.Record(a += 2);
    d.Record(4'000'000'000ull + rng.NextBelow(1'000'000));
  }
  EXPECT_EQ(d.MajorityStride(), 0);
  // 5:1 interleave: 4 of every 6 deltas equal 2 — a real majority survives the noise.
  StrideDetector d2(30);
  for (int i = 0; i < 30; ++i) {
    for (int k = 0; k < 5; ++k) {
      d2.Record(a += 2);
    }
    d2.Record(4'000'000'000ull + rng.NextBelow(1'000'000));
  }
  EXPECT_EQ(d2.MajorityStride(), 2);
}

// --- Part 2: engine predictions, window adaptation, in-flight bounds ----------

PrefetchConfig TestConfig(PrefetchPolicy policy) {
  PrefetchConfig c;
  c.policy = policy;
  c.min_window = 2;
  c.initial_window = 4;
  c.max_window = 16;
  c.max_in_flight = 8;
  return c;
}

TEST(PrefetchEngine, NextNPredictsSequentialReadahead) {
  PrefetchEngine e(TestConfig(PrefetchPolicy::kNextN));
  std::vector<uint64_t> out;
  e.Predict(100, &out);
  ASSERT_EQ(out.size(), e.window());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], 101 + i);
  }
}

TEST(PrefetchEngine, MajorityStridePredictsOnlyAfterAPatternForms) {
  PrefetchEngine e(TestConfig(PrefetchPolicy::kMajorityStride));
  std::vector<uint64_t> out;
  e.Predict(100, &out);
  EXPECT_TRUE(out.empty()) << "no history: no speculation";
  uint64_t page = 100;
  for (int i = 0; i < 6; ++i) {
    e.RecordFault(page += 5);
  }
  e.Predict(page, &out);
  ASSERT_EQ(out.size(), e.window());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], page + 5 * (i + 1));
  }
}

TEST(PrefetchEngine, WindowGrowsOnUsefulAndShrinksOnFeedback) {
  PrefetchEngine e(TestConfig(PrefetchPolicy::kNextN));
  EXPECT_EQ(e.window(), 4u);
  e.OnUseful(1);
  EXPECT_EQ(e.window(), 8u);
  e.OnUseful(2);
  e.OnUseful(3);
  EXPECT_EQ(e.window(), 16u) << "growth saturates at max_window";
  e.OnIssued();
  e.OnLate();
  EXPECT_EQ(e.window(), 8u);
  e.OnIssued();
  e.OnDiscardedStale();
  EXPECT_EQ(e.window(), 4u);
  e.OnEvictedUnused();
  e.OnEvictedUnused();
  EXPECT_EQ(e.window(), 2u) << "shrink saturates at min_window";
}

TEST(PrefetchEngine, InFlightBudgetIsBounded) {
  PrefetchEngine e(TestConfig(PrefetchPolicy::kNextN));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(e.HasInFlightRoom());
    e.OnIssued();
  }
  EXPECT_FALSE(e.HasInFlightRoom());
  e.OnInstalled();
  EXPECT_TRUE(e.HasInFlightRoom());
  EXPECT_EQ(e.stats().issued, 8u);
}

// --- Part 3: end-to-end coverage on all three systems -------------------------

// Streaming scan far past the cache: without prefetching every op is a remote fault.
WorkloadSpec StreamSpec(int blades, Pattern pattern) {
  WorkloadSpec s;
  s.name = "stream";
  s.num_blades = blades;
  s.threads_per_blade = 1;
  s.private_pages_per_thread = 6000;
  s.private_pattern = pattern;
  s.stride_pages = 7;
  s.private_write_fraction = 0.3;
  s.accesses_per_thread = 8000;
  s.think_time = 600;
  s.seed = 3;
  return s;
}

RackConfig SmallRack(int blades) {
  RackConfig c;
  c.num_compute_blades = blades;
  c.num_memory_blades = 2;
  c.memory_blade_capacity = 2ull << 30;
  c.compute_cache_bytes = 8ull << 20;  // 2048 frames: far below the working set.
  return c;
}

ReplayReport Replay(MemorySystem& sys, const WorkloadTraces& traces,
                    PrefetchPolicy policy, int shards = 1) {
  ReplayOptions opts;
  opts.shards = shards;
  opts.prefetch = policy;
  ReplayEngine engine(&sys, &traces, opts);
  EXPECT_TRUE(engine.Setup().ok());
  return engine.Run();
}

TEST(PrefetchEndToEnd, MindStrideCoversStreamingFaults) {
  const WorkloadTraces traces = GenerateTraces(StreamSpec(2, Pattern::kSequential));
  MindSystem base(SmallRack(2));
  const ReplayReport none = Replay(base, traces, PrefetchPolicy::kNone);
  EXPECT_EQ(none.prefetch.issued, 0u);

  MindSystem sys(SmallRack(2));
  const ReplayReport got = Replay(sys, traces, PrefetchPolicy::kMajorityStride);
  EXPECT_GT(got.prefetch.issued, 0u);
  EXPECT_GT(got.prefetch.useful, 0u);
  EXPECT_GT(got.PrefetchCoverage(), 0.3) << "acceptance bar: >= 30% fault coverage";
  EXPECT_GT(got.prefetch.Accuracy(), 0.5);
  EXPECT_LT(got.makespan, none.makespan) << "covered faults must shorten the run";
  EXPECT_LT(got.counters.remote_accesses, none.counters.remote_accesses);
  EXPECT_EQ(got.total_ops, none.total_ops);
}

TEST(PrefetchEndToEnd, FastSwapStrideCoversStridedFaults) {
  const WorkloadTraces traces = GenerateTraces(StreamSpec(1, Pattern::kStrided));
  FastSwapConfig cfg;
  cfg.num_memory_blades = 2;
  cfg.compute_cache_bytes = 8ull << 20;
  FastSwapSystem base(cfg);
  const ReplayReport none = Replay(base, traces, PrefetchPolicy::kNone);

  FastSwapSystem sys(cfg);
  const ReplayReport got = Replay(sys, traces, PrefetchPolicy::kMajorityStride);
  EXPECT_GT(got.prefetch.useful, 0u);
  EXPECT_GT(got.PrefetchCoverage(), 0.3) << "acceptance bar: >= 30% fault coverage";
  EXPECT_LT(got.makespan, none.makespan);
  EXPECT_EQ(got.total_ops, none.total_ops);
}

TEST(PrefetchEndToEnd, MindStoreDataModeInstallsRealPayloads) {
  // store_data exercises the install-time payload re-read (Rack::PeekPageBytes): the
  // prefetched copy must come from the memory blade, not a dangling fetch-time pointer.
  RackConfig cfg = SmallRack(1);
  cfg.store_data = true;
  MindSystem sys(cfg);
  WorkloadSpec spec = StreamSpec(1, Pattern::kSequential);
  spec.accesses_per_thread = 3000;
  const WorkloadTraces traces = GenerateTraces(spec);
  const ReplayReport got = Replay(sys, traces, PrefetchPolicy::kMajorityStride);
  EXPECT_GT(got.prefetch.useful, 0u);
  EXPECT_GT(got.PrefetchCoverage(), 0.3);
}

TEST(PrefetchEndToEnd, GamIssuesBehindTheLibraryLock) {
  const WorkloadTraces traces = GenerateTraces(StreamSpec(2, Pattern::kSequential));
  GamConfig cfg;
  cfg.num_compute_blades = 2;
  cfg.num_memory_blades = 2;
  cfg.compute_cache_bytes = 8ull << 20;
  GamSystem sys(cfg);
  const ReplayReport got = Replay(sys, traces, PrefetchPolicy::kMajorityStride);
  EXPECT_GT(got.prefetch.issued, 0u);
  EXPECT_GT(got.prefetch.useful, 0u);
  EXPECT_GT(got.PrefetchCoverage(), 0.3);
}

// Prefetch state under real worker threads (TSan coverage): engines and per-blade
// tables are only ever touched by their own blade's channel commits or the serialized
// drain, so sharded replay with prefetching on must be race-free and deterministic.
TEST(PrefetchEndToEnd, ShardedReplayWithThreadsIsDeterministic) {
  const WorkloadTraces traces = GenerateTraces(StreamSpec(4, Pattern::kSequential));
  auto run = [&](int shards) {
    MindSystem sys(SmallRack(4));
    ReplayOptions opts;
    opts.shards = shards;
    opts.force_threads = true;
    opts.prefetch = PrefetchPolicy::kMajorityStride;
    ReplayEngine engine(&sys, &traces, opts);
    EXPECT_TRUE(engine.Setup().ok());
    return engine.Run();
  };
  const ReplayReport a = run(4);
  const ReplayReport b = run(4);
  EXPECT_GT(a.prefetch.useful, 0u);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.counters.local_hits, b.counters.local_hits);
  EXPECT_EQ(a.prefetch.issued, b.prefetch.issued);
  EXPECT_EQ(a.prefetch.useful, b.prefetch.useful);
  EXPECT_TRUE(a.latency_histogram == b.latency_histogram);
}

TEST(PrefetchEndToEnd, PointerChaseProducesNoStrideSpeculation) {
  const WorkloadTraces traces = GenerateTraces(StreamSpec(1, Pattern::kPointerChase));
  MindSystem sys(SmallRack(1));
  const ReplayReport got = Replay(sys, traces, PrefetchPolicy::kMajorityStride);
  // No majority stride exists in a permuted chase, so the detector must sit out.
  EXPECT_EQ(got.prefetch.issued, 0u);
}

// --- Part 4: invalidation waves discard stale in-flight prefetches ------------

// --- Part 3b: prefetch-aware eviction priority (DramCache cold inserts) -------

TEST(PrefetchEviction, ColdInsertEvictsGuessesBeforeDemandPages) {
  DramCache cache(/*capacity_frames=*/8, /*store_data=*/false);
  for (uint64_t p = 1; p <= 8; ++p) {
    EXPECT_FALSE(cache.Insert(p, /*writable=*/true).has_value());
  }
  // Speculative install at depth 2: the LRU page 1 is evicted to make room, and the
  // guess links above pages 2 and 3 only — not at MRU.
  auto ev = cache.InsertPrefetched(100, /*writable=*/false, nullptr, 0, /*lru_depth=*/2);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->page, 1u);
  ASSERT_NE(cache.Peek(100), nullptr);
  EXPECT_TRUE(cache.Peek(100)->prefetched);
  // Demand pressure now consumes the two colder demand pages, then the guess — before
  // any of the five warmer demand pages.
  EXPECT_EQ(cache.Insert(200, true)->page, 2u);
  EXPECT_EQ(cache.Insert(201, true)->page, 3u);
  EXPECT_EQ(cache.Insert(202, true)->page, 100u);
  EXPECT_EQ(cache.Insert(203, true)->page, 4u);
}

TEST(PrefetchEviction, DepthZeroMakesAMispredictingBurstChurnItself) {
  DramCache cache(/*capacity_frames=*/4, /*store_data=*/false);
  for (uint64_t p = 1; p <= 4; ++p) {
    cache.Insert(p, /*writable=*/true);
  }
  // The regression this closes: a wrong-guess burst at the cold end evicts its own
  // previous guesses, and all demand pages but the original tail survive.
  EXPECT_EQ(cache.InsertPrefetched(100, false, nullptr, 0, 0)->page, 1u);
  EXPECT_EQ(cache.InsertPrefetched(101, false, nullptr, 0, 0)->page, 100u);
  EXPECT_EQ(cache.InsertPrefetched(102, false, nullptr, 0, 0)->page, 101u);
  for (uint64_t p = 2; p <= 4; ++p) {
    EXPECT_NE(cache.Peek(p), nullptr) << "demand page " << p << " was evicted by guesses";
  }
}

TEST(PrefetchEviction, ColdDepthAdaptsToFeedback) {
  BladePrefetchState bp;
  PrefetchEngine engine{PrefetchConfig{}};
  const uint32_t start = bp.cold_insert_depth();
  bp.unused[42] = &engine;
  bp.OnPrefetchedTouch(42);
  EXPECT_GT(bp.cold_insert_depth(), start) << "useful touches must earn residency";
  for (uint64_t p = 0; p < 16; ++p) {  // A long evicted-unused run floors the depth.
    bp.unused[100 + p] = &engine;
    bp.OnPageEvicted(100 + p);
  }
  EXPECT_EQ(bp.cold_insert_depth(), BladePrefetchState::kMinColdDepth);
  EXPECT_EQ(engine.stats().evicted_unused, 16u);
}

// --- Part 3c: issued-window re-arm (the readahead-marker analog) --------------

TEST(PrefetchRearm, UsefulTouchPastWindowMidpointArmsOnce) {
  PrefetchEngine e{PrefetchConfig{}};
  e.NoteIssuedWindow(/*anchor=*/100, /*end=*/107);
  e.OnUseful(102);  // Below the midpoint: not armed.
  EXPECT_FALSE(e.TakeRearm().has_value());
  e.OnUseful(104);  // Midpoint crossed.
  const auto rearm = e.TakeRearm();
  ASSERT_TRUE(rearm.has_value());
  EXPECT_EQ(*rearm, 104u);
  EXPECT_EQ(e.stats().rearmed, 1u);
  e.OnUseful(106);  // The window arms at most once.
  EXPECT_FALSE(e.TakeRearm().has_value());
  e.NoteIssuedWindow(108, 101);  // Windows striding downward arm symmetrically.
  e.OnUseful(103);
  EXPECT_TRUE(e.TakeRearm().has_value());
}

TEST(PrefetchRearm, BladeQueueCollectsRearmRequestsFromTouches) {
  PrefetchEngine e{PrefetchConfig{}};
  BladePrefetchState bp;
  e.NoteIssuedWindow(10, 17);
  bp.unused[14] = &e;
  bp.OnPrefetchedTouch(14, /*pdid=*/7);
  ASSERT_EQ(bp.rearm_requests.size(), 1u);
  EXPECT_EQ(bp.rearm_requests[0].engine, &e);
  EXPECT_EQ(bp.rearm_requests[0].page, 14u);
  EXPECT_EQ(bp.rearm_requests[0].pdid, 7u);
}

// End-to-end: on a covered stream the touches ride channel/group commits, the re-arm
// hook keeps new windows going out at serialized points, and the accounting shows it.
TEST(PrefetchRearm, StreamingReplayRearmsWindows) {
  const WorkloadTraces traces = GenerateTraces(StreamSpec(2, Pattern::kSequential));
  MindSystem sys(SmallRack(2));
  const ReplayReport got = Replay(sys, traces, PrefetchPolicy::kMajorityStride);
  EXPECT_GT(got.prefetch.useful, 0u);
  EXPECT_GT(got.prefetch.rearmed, 0u) << "window re-arm never triggered";
}

TEST(PrefetchInvalidation, WaveBetweenIssueAndArrivalDiscardsTheCopy) {
  MindSystem sys(SmallRack(2));
  ASSERT_TRUE(sys.SetPrefetchPolicy(PrefetchPolicy::kMajorityStride));
  const VirtAddr base = *sys.Alloc(8ull << 20);
  const ThreadId tid_a = *sys.RegisterThread(0);
  const ThreadId tid_b = *sys.RegisterThread(1);

  // Blade 0 faults pages 0..3 sequentially: after the warm-up deltas the detector locks
  // onto stride 1 and issues prefetches for the pages ahead.
  SimTime t = 0;
  for (uint64_t p = 0; p < 4; ++p) {
    const AccessResult r =
        sys.Access(tid_a, 0, base + p * kPageSize, AccessType::kRead, t);
    ASSERT_TRUE(r.status.ok());
    t = r.completion + 100;
  }
  PrefetchStats stats = sys.prefetch_stats();
  ASSERT_GT(stats.issued, 0u) << "stride prefetches must be in flight";

  // Blade 1 writes page 5 while those fetches are still in flight: the invalidation
  // wave hits blade 0's region, so the in-flight copies are stale.
  {
    const AccessResult r =
        sys.Access(tid_b, 1, base + 5 * kPageSize, AccessType::kWrite, t);
    ASSERT_TRUE(r.status.ok());
  }

  // Long after every fetch has landed, blade 0 touches page 4: the stale install must
  // have been discarded, so this is a real remote fault, not a stale local hit.
  t += 200 * kMicrosecond;
  const AccessResult r = sys.Access(tid_a, 0, base + 4 * kPageSize, AccessType::kRead, t);
  ASSERT_TRUE(r.status.ok());
  EXPECT_FALSE(r.local_hit);
  stats = sys.prefetch_stats();
  EXPECT_GT(stats.discarded_stale, 0u);
  EXPECT_EQ(stats.useful, 0u);
}

// A foreign protection domain can neither join an in-flight prefetch nor consume it:
// speculation must never widen access beyond what the fault path would grant.
TEST(PrefetchInvalidation, JoinPathRespectsProtectionDomains) {
  RackConfig cfg;
  cfg.num_compute_blades = 1;
  cfg.num_memory_blades = 1;
  cfg.prefetch.policy = PrefetchPolicy::kMajorityStride;  // Config-level opt-in path.
  Rack rack(cfg);
  const ProcessId pid_a = *rack.Exec("owner");
  const ProcessId pid_b = *rack.Exec("intruder");
  const ProtDomainId pdid_a = *rack.controller().PdidOf(pid_a);
  const ProtDomainId pdid_b = *rack.controller().PdidOf(pid_b);
  const ThreadId tid_a = rack.SpawnThread(pid_a, 0)->tid;
  const ThreadId tid_b = rack.SpawnThread(pid_b, 0)->tid;
  const VirtAddr base = *rack.Mmap(pid_a, 1 << 20, PermClass::kReadWrite);

  // A's sequential faults arm the detector and put pages 4.. in flight.
  SimTime t = 0;
  for (uint64_t p = 0; p < 4; ++p) {
    const AccessResult r =
        rack.Access({tid_a, 0, pdid_a, base + p * kPageSize, AccessType::kRead, t});
    ASSERT_TRUE(r.status.ok());
    t = r.completion + 100;
  }
  ASSERT_GT(rack.prefetch_stats().issued, 0u);

  // B (no grant for A's vma) demand-reads an in-flight page: denied, exactly as the
  // fault path would rule, and the in-flight entry is not consumed.
  const VirtAddr target = base + 4 * kPageSize;
  const AccessResult denied =
      rack.Access({tid_b, 0, pdid_b, target, AccessType::kRead, t});
  EXPECT_FALSE(denied.status.ok());

  // A's own access long after arrival still gets the prefetched page as a local hit.
  t += 200 * kMicrosecond;
  const AccessResult r = rack.Access({tid_a, 0, pdid_a, target, AccessType::kRead, t});
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.local_hit);
  EXPECT_GT(rack.prefetch_stats().useful, 0u);
}

// --- Part 5: kNone conformance — bit-identical to the per-op reference --------

void ExpectReportsIdentical(const ReplayReport& want, const ReplayReport& got) {
  EXPECT_EQ(want.makespan, got.makespan);
  EXPECT_EQ(want.total_ops, got.total_ops);
  EXPECT_EQ(want.counters.total_accesses, got.counters.total_accesses);
  EXPECT_EQ(want.counters.local_hits, got.counters.local_hits);
  EXPECT_EQ(want.counters.remote_accesses, got.counters.remote_accesses);
  EXPECT_EQ(want.counters.invalidations, got.counters.invalidations);
  EXPECT_EQ(want.counters.pages_flushed, got.counters.pages_flushed);
  EXPECT_EQ(want.counters.false_invalidations, got.counters.false_invalidations);
  EXPECT_TRUE(want.latency_histogram == got.latency_histogram);
  EXPECT_DOUBLE_EQ(want.avg_latency_us, got.avg_latency_us);
  EXPECT_DOUBLE_EQ(want.throughput_mops, got.throughput_mops);
}

TEST(PrefetchNoneConformance, AllSystemsBitIdenticalAtOneAndFourShards) {
  WorkloadSpec spec = MemcachedASpec(4, 2, /*accesses_per_thread=*/2000);
  spec.shared_pages = 4096;
  const WorkloadTraces traces = GenerateTraces(spec);

  const auto check = [&](auto make_system) {
    auto ref_sys = make_system();
    ReplayOptions ref_opts;
    ref_opts.use_channels = false;  // The pre-prefetch per-op reference path.
    ReplayEngine ref(ref_sys.get(), &traces, ref_opts);
    ASSERT_TRUE(ref.Setup().ok());
    const ReplayReport want = ref.Run();
    ASSERT_GT(want.total_ops, 0u);
    for (const int shards : {1, 4}) {
      SCOPED_TRACE(shards);
      auto sys = make_system();
      const ReplayReport got = Replay(*sys, traces, PrefetchPolicy::kNone, shards);
      ExpectReportsIdentical(want, got);
      EXPECT_EQ(got.prefetch.issued, 0u);
      EXPECT_EQ(got.prefetch.useful, 0u);
    }
  };

  {
    SCOPED_TRACE("MIND");
    RackConfig cfg = SmallRack(4);
    cfg.directory_slots = 2048;
    check([cfg] { return std::make_unique<MindSystem>(cfg); });
  }
  {
    SCOPED_TRACE("GAM");
    GamConfig cfg;
    cfg.num_compute_blades = 4;
    cfg.num_memory_blades = 2;
    cfg.compute_cache_bytes = 8ull << 20;
    check([cfg] { return std::make_unique<GamSystem>(cfg); });
  }
  {
    SCOPED_TRACE("FastSwap");
    WorkloadSpec fs_spec = spec;
    fs_spec.num_blades = 1;
    const WorkloadTraces fs_traces = GenerateTraces(fs_spec);
    FastSwapConfig cfg;
    cfg.compute_cache_bytes = 8ull << 20;
    auto ref_sys = std::make_unique<FastSwapSystem>(cfg);
    ReplayOptions ref_opts;
    ref_opts.use_channels = false;
    ReplayEngine ref(ref_sys.get(), &fs_traces, ref_opts);
    ASSERT_TRUE(ref.Setup().ok());
    const ReplayReport want = ref.Run();
    for (const int shards : {1, 4}) {
      SCOPED_TRACE(shards);
      FastSwapSystem sys(cfg);
      const ReplayReport got = Replay(sys, fs_traces, PrefetchPolicy::kNone, shards);
      ExpectReportsIdentical(want, got);
    }
  }
}

}  // namespace
}  // namespace mind
