// Unit tests for in-network address translation (§4.1): blade ranges, outlier LPM entries,
// rule-count accounting.
#include <gtest/gtest.h>

#include "src/dataplane/translation.h"

namespace mind {
namespace {

constexpr uint64_t kGiB = 1024ull * 1024 * 1024;

TEST(Translation, OneRulePerBlade) {
  AddressTranslator t(nullptr);
  ASSERT_TRUE(t.AddBladeRange(0, 0x0, kGiB).ok());
  ASSERT_TRUE(t.AddBladeRange(1, kGiB, kGiB).ok());
  // The headline storage property: translation entries scale with blades, not pages.
  EXPECT_EQ(t.rule_count(), 2u);

  auto r0 = t.Translate(0x1234);
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(r0->blade, 0);
  EXPECT_EQ(r0->phys_addr, 0x1234u);

  auto r1 = t.Translate(kGiB + 0x5000);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->blade, 1);
  EXPECT_EQ(r1->phys_addr, 0x5000u);  // 1:1 within the partition.
}

TEST(Translation, UnmappedAddressFaults) {
  AddressTranslator t(nullptr);
  ASSERT_TRUE(t.AddBladeRange(0, kGiB, kGiB).ok());
  EXPECT_EQ(t.Translate(0x100).status().code(), ErrorCode::kFault);       // Below.
  EXPECT_EQ(t.Translate(3 * kGiB).status().code(), ErrorCode::kFault);    // Above.
  EXPECT_TRUE(t.Translate(kGiB).ok());                                    // Boundary.
  EXPECT_TRUE(t.Translate(2 * kGiB - 1).ok());
  EXPECT_EQ(t.Translate(2 * kGiB).status().code(), ErrorCode::kFault);
}

TEST(Translation, OverlappingBladeRangeRejected) {
  AddressTranslator t(nullptr);
  ASSERT_TRUE(t.AddBladeRange(0, 0, kGiB).ok());
  EXPECT_EQ(t.AddBladeRange(1, kGiB / 2, kGiB).code(), ErrorCode::kExists);
}

TEST(Translation, OutlierOverridesBladeRange) {
  AddressTranslator t(nullptr);
  ASSERT_TRUE(t.AddBladeRange(0, 0, kGiB).ok());
  // Migrate an aligned 64 KB range to blade 3 at physical 0x9000000 (§4.1 outliers).
  ASSERT_TRUE(t.AddOutlier(0x100000, 16, 3, 0x9000000).ok());

  auto migrated = t.Translate(0x100000 + 0x42);
  ASSERT_TRUE(migrated.ok());
  EXPECT_EQ(migrated->blade, 3);
  EXPECT_EQ(migrated->phys_addr, 0x9000000u + 0x42);

  // Just outside the outlier: the blade range applies again.
  auto normal = t.Translate(0x110000);
  ASSERT_TRUE(normal.ok());
  EXPECT_EQ(normal->blade, 0);
}

TEST(Translation, NestedOutliersLongestPrefixWins) {
  AddressTranslator t(nullptr);
  ASSERT_TRUE(t.AddBladeRange(0, 0, kGiB).ok());
  ASSERT_TRUE(t.AddOutlier(0x200000, 20, 1, 0x0).ok());     // 1 MB to blade 1.
  ASSERT_TRUE(t.AddOutlier(0x210000, 16, 2, 0x7000).ok());  // Inner 64 KB to blade 2.
  EXPECT_EQ(t.Translate(0x210000)->blade, 2);
  EXPECT_EQ(t.Translate(0x220000)->blade, 1);
  EXPECT_EQ(t.Translate(0x2ff000)->blade, 1);              // Last page of the 1MB outlier.
  EXPECT_EQ(t.Translate(0x281000)->phys_addr, 0x81000u);   // Offset within the 1MB outlier.
  EXPECT_EQ(t.Translate(0x300000)->blade, 0);              // Past the outlier: blade range.
}

TEST(Translation, RemoveOutlierRestoresRange) {
  AddressTranslator t(nullptr);
  ASSERT_TRUE(t.AddBladeRange(0, 0, kGiB).ok());
  ASSERT_TRUE(t.AddOutlier(0x100000, 16, 3, 0x0).ok());
  EXPECT_EQ(t.rule_count(), 2u);
  ASSERT_TRUE(t.RemoveOutlier(0x100000, 16).ok());
  EXPECT_EQ(t.rule_count(), 1u);
  EXPECT_EQ(t.Translate(0x100000)->blade, 0);
}

TEST(Translation, RuleCapacitySharedWithPool) {
  TcamCapacity cap(2);
  AddressTranslator t(&cap);
  ASSERT_TRUE(t.AddBladeRange(0, 0, kGiB).ok());
  ASSERT_TRUE(t.AddOutlier(0x0, 16, 1, 0).ok());
  EXPECT_EQ(t.AddOutlier(0x100000, 16, 1, 0).code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(t.AddBladeRange(1, kGiB, kGiB).code(), ErrorCode::kResourceExhausted);
}

TEST(Translation, RemoveBladeRange) {
  AddressTranslator t(nullptr);
  ASSERT_TRUE(t.AddBladeRange(0, 0, kGiB).ok());
  ASSERT_TRUE(t.RemoveBladeRange(0).ok());
  EXPECT_EQ(t.Translate(0x1000).status().code(), ErrorCode::kFault);
  EXPECT_EQ(t.RemoveBladeRange(0).code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace mind
