// Fuzz test: random create/split/merge/remove sequences against the cache directory,
// checked after every step against structural invariants and a reference interval model.
// Parameterized over seeds and SRAM capacities.
#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/dataplane/directory.h"

namespace mind {
namespace {

struct FuzzCase {
  const char* name;
  uint64_t seed;
  uint32_t slots;
  int steps;
};

class DirectoryFuzzTest : public ::testing::TestWithParam<FuzzCase> {
 protected:
  static constexpr VirtAddr kSpace = 1ull << 24;  // 16 MB playground.

  // Reference model: base -> size. Kept in lockstep with the directory.
  std::map<VirtAddr, uint64_t> reference_;

  void CheckAgainstReference(CacheDirectory& dir) {
    ASSERT_EQ(dir.entry_count(), reference_.size());
    ASSERT_EQ(dir.slots().used(), reference_.size());
    // No overlap and exact geometry for every reference interval.
    VirtAddr prev_end = 0;
    for (const auto& [base, size] : reference_) {
      ASSERT_GE(base, prev_end) << "reference overlap";
      prev_end = base + size;
      DirectoryEntry* e = dir.Lookup(base);
      ASSERT_NE(e, nullptr);
      ASSERT_EQ(e->base, base);
      ASSERT_EQ(e->size(), size);
      ASSERT_TRUE(IsAligned(base, size));
      // Last byte maps to the same entry; one past maps elsewhere (or nowhere).
      ASSERT_EQ(dir.Lookup(base + size - 1), e);
      DirectoryEntry* next = dir.Lookup(base + size);
      ASSERT_TRUE(next == nullptr || next->base != base);
    }
  }
};

TEST_P(DirectoryFuzzTest, RandomOpsKeepStructureConsistent) {
  const FuzzCase& fc = GetParam();
  CacheDirectory dir(fc.slots);
  Rng rng(fc.seed);

  for (int step = 0; step < fc.steps; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.4) {
      // Create a random aligned region (4 KB .. 256 KB).
      const uint32_t log2 = 12 + static_cast<uint32_t>(rng.NextBelow(7));
      const uint64_t size = uint64_t{1} << log2;
      const VirtAddr base = AlignDown(rng.NextBelow(kSpace - size), size);
      auto created = dir.Create(base, log2);
      // Determine expected outcome from the reference model.
      bool overlaps = false;
      for (const auto& [rbase, rsize] : reference_) {
        if (rbase < base + size && base < rbase + rsize) {
          overlaps = true;
          break;
        }
      }
      if (overlaps) {
        ASSERT_FALSE(created.ok());
        ASSERT_EQ(created.status().code(), ErrorCode::kExists);
      } else if (reference_.size() >= fc.slots) {
        ASSERT_FALSE(created.ok());
        ASSERT_EQ(created.status().code(), ErrorCode::kResourceExhausted);
      } else {
        ASSERT_TRUE(created.ok());
        reference_[base] = size;
      }
    } else if (roll < 0.6 && !reference_.empty()) {
      // Split a random existing region.
      auto it = reference_.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(reference_.size())));
      const VirtAddr base = it->first;
      const uint64_t size = it->second;
      const Status s = dir.Split(base);
      if (size <= kPageSize || reference_.size() >= fc.slots) {
        ASSERT_FALSE(s.ok());
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        reference_[base] = size / 2;
        reference_[base + size / 2] = size / 2;
      }
    } else if (roll < 0.8 && !reference_.empty()) {
      // Merge a random region with its buddy (may legitimately fail).
      auto it = reference_.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(reference_.size())));
      const VirtAddr base = it->first;
      const uint64_t size = it->second;
      const VirtAddr buddy = base ^ size;
      const bool mergeable = reference_.count(buddy) != 0 && reference_[buddy] == size &&
                             size < (1ull << 21);
      const Status s = dir.MergeWithBuddy(base, 21);
      ASSERT_EQ(s.ok(), mergeable) << s.ToString();
      if (mergeable) {
        const VirtAddr lower = std::min(base, buddy);
        reference_.erase(std::max(base, buddy));
        reference_[lower] = size * 2;
      }
    } else if (!reference_.empty()) {
      // Remove a random region.
      auto it = reference_.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(reference_.size())));
      ASSERT_TRUE(dir.Remove(it->first).ok());
      reference_.erase(it);
    }

    if (step % 32 == 0) {
      CheckAgainstReference(dir);
    }
  }
  CheckAgainstReference(dir);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DirectoryFuzzTest,
    ::testing::Values(FuzzCase{"roomy_1", 1, 4096, 2000}, FuzzCase{"roomy_2", 2, 4096, 2000},
                      FuzzCase{"tight_1", 3, 48, 2000}, FuzzCase{"tight_2", 4, 48, 2000},
                      FuzzCase{"tiny", 5, 8, 1500}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) { return info.param.name; });

}  // namespace
}  // namespace mind
