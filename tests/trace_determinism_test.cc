// TraceScope determinism tests (src/obs/): the semantic event stream — access spans,
// invalidation waves, directory splits/merges, fault timeouts/resets, drains, prefetch
// lifecycle — is recorded only on serialized paths, so its canonical byte serialization
// (TraceScope::SemanticBytes) must be BIT-IDENTICAL across 1/2/4/8 shards, channel groups
// on/off, worker threads on/off and the per-op reference path, for the same seed and
// fault schedule, on all three systems. And tracing must be a pure observer: every
// counter block and the latency histogram must be bit-identical with tracing on vs off.
// Unit tests of the sink/merge/export machinery live in observability_test.cc.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/fastswap.h"
#include "src/baselines/gam.h"
#include "src/baselines/mind_system.h"
#include "src/workload/generators.h"
#include "src/workload/replay.h"

namespace mind {
namespace {

using SystemFactory = std::function<std::unique_ptr<MemorySystem>()>;

struct TracedRun {
  ReplayReport report;
  std::string semantic_bytes;
  size_t semantic_events = 0;
  uint64_t digest = 0;
};

TracedRun RunTraced(const SystemFactory& make, const WorkloadTraces& traces,
                    ReplayOptions opts) {
  opts.trace = true;
  auto sys = make();
  ReplayEngine engine(sys.get(), &traces, opts);
  EXPECT_TRUE(engine.Setup().ok());
  TracedRun out;
  out.report = engine.Run();
  const TraceScope* scope = engine.trace_scope();
  EXPECT_NE(scope, nullptr);
  EXPECT_TRUE(scope->finalized());
  out.semantic_bytes = scope->SemanticBytes();
  out.semantic_events = scope->semantic_events();
  out.digest = scope->SemanticDigest();
  return out;
}

ReplayReport RunPlain(const SystemFactory& make, const WorkloadTraces& traces,
                      ReplayOptions opts) {
  auto sys = make();
  ReplayEngine engine(sys.get(), &traces, opts);
  EXPECT_TRUE(engine.Setup().ok());
  return engine.Run();
}

void ExpectReportsIdentical(const ReplayReport& want, const ReplayReport& got) {
  EXPECT_EQ(want.makespan, got.makespan);
  EXPECT_EQ(want.total_ops, got.total_ops);
  EXPECT_EQ(want.counters.total_accesses, got.counters.total_accesses);
  EXPECT_EQ(want.counters.local_hits, got.counters.local_hits);
  EXPECT_EQ(want.counters.remote_accesses, got.counters.remote_accesses);
  EXPECT_EQ(want.counters.invalidations, got.counters.invalidations);
  EXPECT_EQ(want.counters.pages_flushed, got.counters.pages_flushed);
  EXPECT_EQ(want.counters.false_invalidations, got.counters.false_invalidations);
  EXPECT_TRUE(want.latency_histogram == got.latency_histogram);
  EXPECT_DOUBLE_EQ(want.avg_latency_us, got.avg_latency_us);
  EXPECT_DOUBLE_EQ(want.throughput_mops, got.throughput_mops);
  EXPECT_TRUE(want.fault == got.fault);
}

// The execution-strategy matrix the semantic stream must be invariant under.
struct Mode {
  bool reference = false;
  bool groups = true;
  bool threads = false;
  int shards = 1;
};

std::vector<Mode> DeterminismMatrix() {
  return {
      Mode{/*reference=*/true, true, false, 1},
      Mode{false, /*groups=*/true, false, 1},
      Mode{false, /*groups=*/true, false, 2},
      Mode{false, /*groups=*/true, false, 4},
      Mode{false, /*groups=*/true, false, 8},
      Mode{false, /*groups=*/false, false, 4},
      Mode{false, /*groups=*/true, /*threads=*/true, 4},
  };
}

void ExpectSemanticStreamInvariant(const SystemFactory& make,
                                   const WorkloadTraces& traces,
                                   bool expect_events = true) {
  ReplayOptions ref_opts;
  ref_opts.use_channels = false;
  const TracedRun want = RunTraced(make, traces, ref_opts);
  if (expect_events) {
    ASSERT_GT(want.semantic_events, 0u);  // The schedule must actually emit.
  }
  for (const Mode& m : DeterminismMatrix()) {
    if (m.reference) {
      continue;  // `want` already is the reference run.
    }
    SCOPED_TRACE(::testing::Message()
                 << (m.groups ? "groups" : "plain") << "/" << m.shards << "shards"
                 << (m.threads ? "/threads" : ""));
    ReplayOptions opts;
    opts.shards = m.shards;
    opts.use_channel_groups = m.groups;
    opts.force_threads = m.threads;
    const TracedRun got = RunTraced(make, traces, opts);
    ExpectReportsIdentical(want.report, got.report);
    EXPECT_EQ(want.semantic_events, got.semantic_events);
    EXPECT_EQ(want.digest, got.digest);
    EXPECT_EQ(want.semantic_bytes, got.semantic_bytes);  // Byte-for-byte.
  }
}

// --- Configs: coherence-dense traffic with a live fault schedule ----------------------

RackConfig TracedRackConfig() {
  RackConfig c;
  c.num_compute_blades = 4;
  c.num_memory_blades = 4;
  c.memory_blade_capacity = 2ull << 30;
  c.compute_cache_bytes = 8ull << 20;  // Small cache: real LRU evictions during replay.
  c.directory_slots = 2048;            // Small directory: capacity evictions + merges.
  c.splitting.epoch_length = 2 * kMillisecond;
  c.fault.reliability.loss_probability = 0.02;
  return c;
}

WorkloadSpec CoherenceSpec(int blades) {
  WorkloadSpec spec = MemcachedASpec(blades, /*threads_per_blade=*/2,
                                     /*accesses_per_thread=*/2000);
  spec.shared_pages = 4096;
  return spec;
}

// --- Semantic-stream invariance across the execution matrix ---------------------------

TEST(TraceDeterminism, MindSemanticStreamInvariantUnderFaults) {
  RackConfig config = TracedRackConfig();
  // A mid-run blade death (reset path) and a scheduled drain: the fault events, the
  // reset flush wave and the drain/migration events must all land identically.
  config.fault.death.blade = 1;
  config.fault.death.at = 40 * kMillisecond;
  config.fault.drains.push_back(
      FaultPlaneConfig::BladeDrain{/*blade=*/0, /*dst=*/1, /*at=*/20 * kMillisecond});
  const WorkloadTraces traces = GenerateTraces(CoherenceSpec(4));
  const SystemFactory make = [&] { return std::make_unique<MindSystem>(config); };
  ExpectSemanticStreamInvariant(make, traces);
}

TEST(TraceDeterminism, GamSemanticStreamInvariant) {
  GamConfig config;
  config.num_compute_blades = 4;
  config.num_memory_blades = 4;
  config.compute_cache_bytes = 8ull << 20;
  config.fault.reliability.loss_probability = 0.02;
  const WorkloadTraces traces = GenerateTraces(CoherenceSpec(4));
  const SystemFactory make = [&] { return std::make_unique<GamSystem>(config); };
  ExpectSemanticStreamInvariant(make, traces);
}

TEST(TraceDeterminism, FastSwapSemanticStreamInvariant) {
  FastSwapConfig config;
  config.num_memory_blades = 4;
  config.compute_cache_bytes = 4ull << 20;  // 1024 frames: real faults and evictions.
  config.fault.reliability.loss_probability = 0.02;
  const WorkloadTraces traces = GenerateTraces(CoherenceSpec(1));
  const SystemFactory make = [&] { return std::make_unique<FastSwapSystem>(config); };
  ExpectSemanticStreamInvariant(make, traces);
}

TEST(TraceDeterminism, MindSemanticStreamInvariantWithPrefetch) {
  RackConfig config = TracedRackConfig();
  config.prefetch.policy = PrefetchPolicy::kNextN;
  const WorkloadTraces traces = GenerateTraces(CoherenceSpec(4));
  const SystemFactory make = [&] { return std::make_unique<MindSystem>(config); };
  ExpectSemanticStreamInvariant(make, traces);
}

// --- Tracing is a pure observer -------------------------------------------------------

void ExpectTracingPure(const SystemFactory& make, const WorkloadTraces& traces) {
  for (const int shards : {1, 4}) {
    SCOPED_TRACE(shards);
    ReplayOptions opts;
    opts.shards = shards;
    const ReplayReport off = RunPlain(make, traces, opts);
    const TracedRun on = RunTraced(make, traces, opts);
    ExpectReportsIdentical(off, on.report);
    EXPECT_EQ(off.prefetch.issued, on.report.prefetch.issued);
    EXPECT_EQ(off.prefetch.useful, on.report.prefetch.useful);
    EXPECT_EQ(off.prefetch.late, on.report.prefetch.late);
    EXPECT_EQ(off.prefetch.discarded_stale, on.report.prefetch.discarded_stale);
  }
}

TEST(TraceDeterminism, TracingOnVsOffCountersIdenticalMind) {
  RackConfig config = TracedRackConfig();
  config.fault.death.blade = 1;
  config.fault.death.at = 40 * kMillisecond;
  const WorkloadTraces traces = GenerateTraces(CoherenceSpec(4));
  ExpectTracingPure([&] { return std::make_unique<MindSystem>(config); }, traces);
}

TEST(TraceDeterminism, TracingOnVsOffCountersIdenticalGam) {
  GamConfig config;
  config.num_compute_blades = 4;
  config.num_memory_blades = 4;
  config.compute_cache_bytes = 8ull << 20;
  config.fault.reliability.loss_probability = 0.02;
  config.prefetch.policy = PrefetchPolicy::kMajorityStride;
  const WorkloadTraces traces = GenerateTraces(CoherenceSpec(4));
  ExpectTracingPure([&] { return std::make_unique<GamSystem>(config); }, traces);
}

TEST(TraceDeterminism, TracingOnVsOffCountersIdenticalFastSwap) {
  FastSwapConfig config;
  config.num_memory_blades = 4;
  config.compute_cache_bytes = 4ull << 20;
  config.fault.reliability.loss_probability = 0.02;
  config.prefetch.policy = PrefetchPolicy::kNextN;
  const WorkloadTraces traces = GenerateTraces(CoherenceSpec(1));
  ExpectTracingPure([&] { return std::make_unique<FastSwapSystem>(config); }, traces);
}

// Profiling reads the host clock but never simulated state: results with profile on must
// equal results with both off, and the profiler must have recorded real lanes.
TEST(TraceDeterminism, ProfilingIsAPureObserver) {
  const RackConfig config = TracedRackConfig();
  const WorkloadTraces traces = GenerateTraces(CoherenceSpec(4));
  const SystemFactory make = [&] { return std::make_unique<MindSystem>(config); };
  ReplayOptions opts;
  opts.shards = 4;
  const ReplayReport off = RunPlain(make, traces, opts);
  auto sys = make();
  opts.profile = true;
  ReplayEngine engine(sys.get(), &traces, opts);
  ASSERT_TRUE(engine.Setup().ok());
  const ReplayReport on = engine.Run();
  ExpectReportsIdentical(off, on);
  const PhaseProfiler* prof = engine.profiler();
  ASSERT_NE(prof, nullptr);
  EXPECT_EQ(prof->num_lanes(), 5u);  // 4 shard lanes + the serial lane.
  uint64_t recorded = 0;
  for (size_t l = 0; l < prof->num_lanes(); ++l) {
    for (int p = 0; p < PhaseProfiler::kNumPhases; ++p) {
      recorded += prof->lane(l).count[p];
    }
  }
  EXPECT_GT(recorded, 0u);
}

}  // namespace
}  // namespace mind
